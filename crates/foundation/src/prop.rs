//! A compact property-testing harness replacing `proptest`.
//!
//! Three pieces:
//!
//! * **Generators** ([`Gen`]): composable value sources. Ranges
//!   ([`f64_range`], [`usize_range`], [`u64_range`]), fixed- and
//!   variable-length vectors ([`vec_exact`], [`vec_of`]), [`map`],
//!   choices ([`one_of`], [`choice`], [`weighted`]), dependent pairs
//!   ([`flat_map`]), and tuple composition up to arity 7 (a tuple of
//!   generators is a generator of tuples).
//! * **Deterministic case generation**: case `i` of a run draws from
//!   `xoshiro256++(splitmix64(seed) ⊕ i)`, so the same seed always
//!   produces the same cases, independent of thread scheduling or prior
//!   tests. The default seed is fixed; set `FOUNDATION_PROP_SEED` /
//!   `FOUNDATION_PROP_CASES` to explore.
//! * **Shrinking**: on failure the harness walks [`Gen::shrink`]
//!   candidates greedily (first failing candidate wins, repeat until no
//!   candidate fails), then panics with the *shrunk* input's `Debug`
//!   form, the original seed and the case number.
//!
//! ```
//! use foundation::prop::*;
//! check("addition_commutes", &(f64_range(-1e6, 1e6), f64_range(-1e6, 1e6)), |(a, b)| {
//!     prop_assert!(a + b == b + a, "{a} + {b}");
//!     Ok(())
//! });
//! ```

use crate::rng::{SplitMix64, Xoshiro256pp};
use std::fmt::Debug;

/// Property body result: `Ok(())` passes, `Err(reason)` fails.
pub type PropResult = Result<(), String>;

/// Assert inside a property body; on failure returns `Err` so the
/// harness can shrink (a plain `assert!` would abort without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($arg)+)
            ));
        }
    };
}

/// Equality assertion inside a property body (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

pub use crate::{prop_assert, prop_assert_eq};

/// A composable value generator with optional shrinking.
pub trait Gen {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value;

    /// Candidate simplifications of `v`, simplest first. The harness
    /// keeps any candidate that still fails the property.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cases to run per property.
    pub cases: usize,
    /// Base seed; case `i` derives its stream from `mix(seed) ^ i`.
    pub seed: u64,
    /// Cap on shrink rounds (each round scans all candidates once).
    pub max_shrink_rounds: usize,
}

/// Fixed default seed: the suite is deterministic out of the box.
pub const DEFAULT_SEED: u64 = 0x10AD_5EED_CA5E_0001;

impl Default for Config {
    fn default() -> Self {
        let seed = std::env::var("FOUNDATION_PROP_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        let cases =
            std::env::var("FOUNDATION_PROP_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64);
        Config { cases, seed, max_shrink_rounds: 200 }
    }
}

impl Config {
    /// Default config with a different case count.
    pub fn with_cases(cases: usize) -> Self {
        Config { cases, ..Config::default() }
    }
}

/// Run `prop` against `cases` generated inputs with the default
/// [`Config`]; panics (after shrinking) on the first failure.
pub fn check<G: Gen>(name: &str, gen: &G, prop: impl Fn(G::Value) -> PropResult) {
    check_with(&Config::default(), name, gen, prop);
}

/// [`check`] with an explicit [`Config`].
pub fn check_with<G: Gen>(
    cfg: &Config,
    name: &str,
    gen: &G,
    prop: impl Fn(G::Value) -> PropResult,
) {
    // decorrelate the per-case streams from consecutive seeds
    let base = SplitMix64::new(cfg.seed).next_u64();
    for case in 0..cfg.cases {
        let mut rng = Xoshiro256pp::seed_from_u64(base ^ case as u64);
        let input = gen.generate(&mut rng);
        if let Err(err) = prop(input.clone()) {
            let (shrunk, final_err, rounds) =
                shrink_failure(gen, &prop, input, err, cfg.max_shrink_rounds);
            panic!(
                "property `{name}` failed (seed {:#x}, case {case}/{}, {rounds} shrink rounds)\n\
                 shrunk input: {shrunk:?}\n\
                 failure: {final_err}",
                cfg.seed, cfg.cases
            );
        }
    }
}

fn shrink_failure<G: Gen>(
    gen: &G,
    prop: &impl Fn(G::Value) -> PropResult,
    mut cur: G::Value,
    mut err: String,
    max_rounds: usize,
) -> (G::Value, String, usize) {
    let mut rounds = 0;
    'outer: while rounds < max_rounds {
        rounds += 1;
        for cand in gen.shrink(&cur) {
            // a shrink candidate that *panics* (rather than returning
            // Err) still counts as failing — catch it
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(cand.clone())));
            let failed = match outcome {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e),
                Err(payload) => Some(panic_message(payload)),
            };
            if let Some(e) = failed {
                cur = cand;
                err = e;
                continue 'outer;
            }
        }
        break;
    }
    (cur, err, rounds)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

// ---------------------------------------------------------------- ranges

/// Uniform `f64` in `[lo, hi)`; shrinks toward `0` (or the bound of the
/// range nearest zero).
pub fn f64_range(lo: f64, hi: f64) -> F64Range {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    F64Range { lo, hi }
}

/// See [`f64_range`].
#[derive(Debug, Clone)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

impl F64Range {
    /// The in-range value nearest zero — the shrink target.
    fn anchor(&self) -> f64 {
        if self.lo <= 0.0 && self.hi > 0.0 {
            0.0
        } else if self.lo > 0.0 {
            self.lo
        } else {
            // negative-only range: the largest representable value < hi
            self.hi.next_down().max(self.lo)
        }
    }
}

impl Gen for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut Xoshiro256pp) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }

    fn shrink(&self, v: &f64) -> Vec<f64> {
        let anchor = self.anchor();
        let mut out = Vec::new();
        if *v != anchor {
            out.push(anchor);
            let halfway = anchor + (*v - anchor) * 0.5;
            if halfway != *v {
                out.push(halfway);
            }
            let trunc = v.trunc();
            if trunc != *v && trunc >= self.lo && trunc < self.hi {
                out.push(trunc);
            }
            // integral values step toward the anchor by 1, so boundary
            // counterexamples (e.g. "fails at |x| ≥ 10") land exactly
            if v.trunc() == *v {
                let step = *v - (*v - anchor).signum();
                if step != *v && step >= self.lo && step < self.hi {
                    out.push(step);
                }
            }
        }
        out
    }
}

/// Uniform `usize` in `[lo, hi)`; shrinks toward `lo`.
pub fn usize_range(lo: usize, hi: usize) -> UsizeRange {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    UsizeRange { lo, hi }
}

/// See [`usize_range`].
#[derive(Debug, Clone)]
pub struct UsizeRange {
    lo: usize,
    hi: usize,
}

impl Gen for UsizeRange {
    type Value = usize;

    fn generate(&self, rng: &mut Xoshiro256pp) -> usize {
        rng.range_usize(self.lo, self.hi)
    }

    fn shrink(&self, v: &usize) -> Vec<usize> {
        let mut out = Vec::new();
        if *v > self.lo {
            out.push(self.lo);
            let mid = self.lo + (*v - self.lo) / 2;
            if mid != *v && mid != self.lo {
                out.push(mid);
            }
            out.push(*v - 1);
        }
        out.dedup();
        out
    }
}

/// Uniform `u64` in `[lo, hi)`; shrinks toward `lo`.
pub fn u64_range(lo: u64, hi: u64) -> U64Range {
    assert!(lo < hi, "empty range [{lo}, {hi})");
    U64Range { lo, hi }
}

/// See [`u64_range`].
#[derive(Debug, Clone)]
pub struct U64Range {
    lo: u64,
    hi: u64,
}

impl Gen for U64Range {
    type Value = u64;

    fn generate(&self, rng: &mut Xoshiro256pp) -> u64 {
        rng.range_u64(self.lo, self.hi)
    }

    fn shrink(&self, v: &u64) -> Vec<u64> {
        let mut out = Vec::new();
        if *v > self.lo {
            out.push(self.lo);
            let mid = self.lo + (*v - self.lo) / 2;
            if mid != *v && mid != self.lo {
                out.push(mid);
            }
            out.push(*v - 1);
        }
        out.dedup();
        out
    }
}

// --------------------------------------------------------------- vectors

/// Exactly `len` draws of `elem`; shrinks elements pointwise (length is
/// part of the contract and never shrinks).
pub fn vec_exact<G: Gen>(elem: G, len: usize) -> VecExact<G> {
    VecExact { elem, len }
}

/// See [`vec_exact`].
#[derive(Debug, Clone)]
pub struct VecExact<G> {
    elem: G,
    len: usize,
}

impl<G: Gen> Gen for VecExact<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value {
        (0..self.len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for (i, item) in v.iter().enumerate() {
            for cand in self.elem.shrink(item) {
                let mut copy = v.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    }
}

/// Between `len_lo` and `len_hi - 1` draws of `elem`; shrinks by
/// dropping elements (down to `len_lo`) and then pointwise.
pub fn vec_of<G: Gen>(elem: G, len_lo: usize, len_hi: usize) -> VecOf<G> {
    assert!(len_lo < len_hi, "empty length range [{len_lo}, {len_hi})");
    VecOf { elem, len_lo, len_hi }
}

/// See [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecOf<G> {
    elem: G,
    len_lo: usize,
    len_hi: usize,
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value {
        let len = rng.range_usize(self.len_lo, self.len_hi);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        if v.len() > self.len_lo {
            // drop half, then drop each single element
            let half = self.len_lo.max(v.len() / 2);
            if half < v.len() {
                out.push(v[..half].to_vec());
            }
            for skip in 0..v.len() {
                let mut copy = v.clone();
                copy.remove(skip);
                out.push(copy);
            }
        }
        for (i, item) in v.iter().enumerate() {
            for cand in self.elem.shrink(item) {
                let mut copy = v.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    }
}

// ----------------------------------------------------------------- map

/// Transform generated values with `f` (no shrinking through the map —
/// supply a custom [`Gen`] if shrinkable mapped values matter).
pub fn map<G: Gen, U: Clone + Debug>(
    inner: G,
    f: impl Fn(G::Value) -> U,
) -> Mapped<G, impl Fn(G::Value) -> U> {
    Mapped { inner, f }
}

/// See [`map`].
pub struct Mapped<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, U: Clone + Debug, F: Fn(G::Value) -> U> Gen for Mapped<G, F> {
    type Value = U;

    fn generate(&self, rng: &mut Xoshiro256pp) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always the same value (for pinning one tuple slot).
pub fn just<T: Clone + Debug>(v: T) -> Just<T> {
    Just { v }
}

/// See [`just`].
#[derive(Debug, Clone)]
pub struct Just<T> {
    v: T,
}

impl<T: Clone + Debug> Gen for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Xoshiro256pp) -> T {
        self.v.clone()
    }
}

// --------------------------------------------------------------- choices

/// Pick uniformly from a fixed list of values; shrinks toward earlier
/// entries (put the simplest value first).
pub fn one_of<T: Clone + Debug + PartialEq>(choices: &[T]) -> OneOf<T> {
    assert!(!choices.is_empty(), "one_of needs at least one choice");
    OneOf { choices: choices.to_vec() }
}

/// See [`one_of`].
#[derive(Debug, Clone)]
pub struct OneOf<T> {
    choices: Vec<T>,
}

impl<T: Clone + Debug + PartialEq> Gen for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut Xoshiro256pp) -> T {
        self.choices[rng.range_usize(0, self.choices.len())].clone()
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        // every entry listed before `v` is considered simpler
        match self.choices.iter().position(|c| c == v) {
            Some(idx) => self.choices[..idx].to_vec(),
            None => Vec::new(),
        }
    }
}

/// Pick uniformly among same-typed sub-generators; candidate shrinks are
/// the union over all branches (shrinking may thus cross branches, which
/// is sound: every candidate is re-tested against the property).
pub fn choice<G: Gen>(gens: Vec<G>) -> Choice<G> {
    assert!(!gens.is_empty(), "choice needs at least one generator");
    let weights = vec![1; gens.len()];
    Choice { gens, weights }
}

/// Like [`choice`] but with per-branch integer weights (a weight of 3
/// makes that branch three times as likely as a weight of 1).
pub fn weighted<G: Gen>(weighted_gens: Vec<(u64, G)>) -> Choice<G> {
    assert!(!weighted_gens.is_empty(), "weighted needs at least one generator");
    let (weights, gens): (Vec<u64>, Vec<G>) = weighted_gens.into_iter().unzip();
    assert!(weights.iter().sum::<u64>() > 0, "weighted needs a positive total weight");
    Choice { gens, weights }
}

/// See [`choice`] / [`weighted`].
pub struct Choice<G> {
    gens: Vec<G>,
    weights: Vec<u64>,
}

impl<G: Gen> Gen for Choice<G> {
    type Value = G::Value;

    fn generate(&self, rng: &mut Xoshiro256pp) -> G::Value {
        let total: u64 = self.weights.iter().sum();
        let mut pick = rng.range_u64(0, total);
        for (g, &w) in self.gens.iter().zip(&self.weights) {
            if pick < w {
                return g.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum covers the draw range")
    }

    fn shrink(&self, v: &G::Value) -> Vec<G::Value> {
        let mut out = Vec::new();
        for g in &self.gens {
            out.extend(g.shrink(v));
        }
        out
    }
}

// -------------------------------------------------------------- flat_map

/// Dependent generation: draw `a`, then draw `b` from the generator
/// `f(&a)`. The value is the `(a, b)` pair so shrinking stays sound:
/// `b` shrinks through `f(&a)`, and when `a` shrinks the dependent side
/// is *regenerated* from `f(&a')` with a fixed-seed stream (a shrink has
/// no RNG of its own), keeping every candidate pair self-consistent.
pub fn flat_map<GA: Gen, GB: Gen, F: Fn(&GA::Value) -> GB>(a: GA, f: F) -> FlatMap<GA, F> {
    FlatMap { a, f }
}

/// See [`flat_map`].
pub struct FlatMap<GA, F> {
    a: GA,
    f: F,
}

impl<GA: Gen, GB: Gen, F: Fn(&GA::Value) -> GB> Gen for FlatMap<GA, F> {
    type Value = (GA::Value, GB::Value);

    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value {
        let av = self.a.generate(rng);
        let bv = (self.f)(&av).generate(rng);
        (av, bv)
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let (av, bv) = v;
        let mut out = Vec::new();
        for a_cand in self.a.shrink(av) {
            let mut rng = Xoshiro256pp::seed_from_u64(DEFAULT_SEED);
            let b_regen = (self.f)(&a_cand).generate(&mut rng);
            out.push((a_cand, b_regen));
        }
        for b_cand in (self.f)(av).shrink(bv) {
            out.push((av.clone(), b_cand));
        }
        out
    }
}

// --------------------------------------------------------------- tuples

macro_rules! impl_gen_tuple {
    ($($G:ident $v:ident $i:tt),+) => {
        impl<$($G: Gen),+> Gen for ($($G,)+) {
            type Value = ($($G::Value,)+);

            fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&v.$i) {
                        let mut copy = v.clone();
                        copy.$i = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    };
}

impl_gen_tuple!(G0 v0 0);
impl_gen_tuple!(G0 v0 0, G1 v1 1);
impl_gen_tuple!(G0 v0 0, G1 v1 1, G2 v2 2);
impl_gen_tuple!(G0 v0 0, G1 v1 1, G2 v2 2, G3 v3 3);
impl_gen_tuple!(G0 v0 0, G1 v1 1, G2 v2 2, G3 v3 3, G4 v4 4);
impl_gen_tuple!(G0 v0 0, G1 v1 1, G2 v2 2, G3 v3 3, G4 v4 4, G5 v5 5);
impl_gen_tuple!(G0 v0 0, G1 v1 1, G2 v2 2, G3 v3 3, G4 v4 4, G5 v5 5, G6 v6 6);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_cases() {
        let cfg = Config { cases: 20, seed: 99, max_shrink_rounds: 10 };
        let collect = || {
            let mut vals = Vec::new();
            let base = SplitMix64::new(cfg.seed).next_u64();
            for case in 0..cfg.cases {
                let mut rng = Xoshiro256pp::seed_from_u64(base ^ case as u64);
                vals.push((f64_range(-1.0, 1.0), usize_range(0, 100)).generate(&mut rng));
            }
            vals
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn passing_property_passes() {
        check_with(
            &Config { cases: 50, seed: 1, max_shrink_rounds: 10 },
            "tautology",
            &(usize_range(0, 10), f64_range(-1.0, 1.0)),
            |(n, x)| {
                prop_assert!(n < 10 && (-1.0..1.0).contains(&x));
                Ok(())
            },
        );
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        // property "n < 57" over [0, 1000): the minimal counterexample
        // is 57, and shrinking must find it from any failing start
        let result = std::panic::catch_unwind(|| {
            check_with(
                &Config { cases: 200, seed: 3, max_shrink_rounds: 200 },
                "shrinks",
                &(usize_range(0, 1000),),
                |(n,)| {
                    prop_assert!(n < 57, "n = {n}");
                    Ok(())
                },
            );
        });
        let msg = panic_message(result.unwrap_err());
        assert!(msg.contains("shrunk input: (57,)"), "shrunk to the boundary: {msg}");
        assert!(msg.contains("seed"), "names the seed: {msg}");
    }

    #[test]
    fn vec_shrinking_reduces_length_and_elements() {
        let result = std::panic::catch_unwind(|| {
            check_with(
                &Config { cases: 100, seed: 5, max_shrink_rounds: 500 },
                "vec-shrink",
                &(vec_of(f64_range(-100.0, 100.0), 0, 20),),
                |(xs,)| {
                    prop_assert!(!xs.iter().any(|x| x.abs() >= 10.0), "{xs:?}");
                    Ok(())
                },
            );
        });
        let msg = panic_message(result.unwrap_err());
        // minimal counterexample: a single element at magnitude 10
        assert!(
            msg.contains("shrunk input: ([10.0],)") || msg.contains("shrunk input: ([-10.0],)"),
            "{msg}"
        );
    }

    #[test]
    fn one_of_draws_all_choices_and_shrinks_to_earliest_failure() {
        // coverage: over enough cases every entry appears
        let gen = one_of(&["alpha", "beta", "gamma"]);
        let mut seen = [false; 3];
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        for _ in 0..100 {
            match gen.generate(&mut rng) {
                "alpha" => seen[0] = true,
                "beta" => seen[1] = true,
                "gamma" => seen[2] = true,
                other => panic!("unexpected draw {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
        // convergence: "fails unless alpha" must shrink all the way to
        // the earliest failing entry, beta
        let result = std::panic::catch_unwind(|| {
            check_with(
                &Config { cases: 100, seed: 21, max_shrink_rounds: 20 },
                "one-of-shrink",
                &(one_of(&["alpha", "beta", "gamma"]),),
                |(s,)| {
                    prop_assert!(s == "alpha", "s = {s}");
                    Ok(())
                },
            );
        });
        let msg = panic_message(result.unwrap_err());
        assert!(msg.contains("shrunk input: (\"beta\",)"), "{msg}");
    }

    #[test]
    fn weighted_respects_weights() {
        // 9:1 weighting over [0,10) vs [100,110): the heavy branch must
        // dominate (law of large numbers at n = 1000, far from the tail)
        let gen = weighted(vec![(9, usize_range(0, 10)), (1, usize_range(100, 110))]);
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let heavy = (0..1000).filter(|_| gen.generate(&mut rng) < 10).count();
        assert!((800..=980).contains(&heavy), "heavy branch drawn {heavy}/1000");
    }

    #[test]
    fn choice_shrinks_across_branches() {
        // both branches generate usize; the counterexample 57 lives in
        // the second branch's range but shrinking may walk through the
        // first branch's candidates — it must still reach the boundary
        let result = std::panic::catch_unwind(|| {
            check_with(
                &Config { cases: 200, seed: 29, max_shrink_rounds: 200 },
                "choice-shrink",
                &(choice(vec![usize_range(0, 1000), usize_range(500, 1000)]),),
                |(n,)| {
                    prop_assert!(n < 57, "n = {n}");
                    Ok(())
                },
            );
        });
        let msg = panic_message(result.unwrap_err());
        assert!(msg.contains("shrunk input: (57,)"), "{msg}");
    }

    #[test]
    fn flat_map_pairs_stay_consistent() {
        // b depends on a: a vector of exactly `len` elements; the pair
        // must be self-consistent for every generated AND shrunk value
        let gen = flat_map(usize_range(1, 9), |&len| vec_exact(f64_range(-1.0, 1.0), len));
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        for _ in 0..50 {
            let (len, xs) = gen.generate(&mut rng);
            assert_eq!(xs.len(), len);
            for cand in gen.shrink(&(len, xs)) {
                assert_eq!(cand.1.len(), cand.0, "shrink broke the dependency: {cand:?}");
            }
        }
    }

    #[test]
    fn flat_map_shrinks_the_independent_side_to_the_boundary() {
        // property "len < 4" ignores the dependent vector entirely, so
        // shrinking must drive len to exactly 4 while regenerating the
        // vector consistently
        let result = std::panic::catch_unwind(|| {
            check_with(
                &Config { cases: 100, seed: 37, max_shrink_rounds: 100 },
                "flat-map-shrink",
                &flat_map(usize_range(1, 9), |&len| vec_exact(f64_range(-1.0, 1.0), len)),
                |(len, xs)| {
                    prop_assert_eq!(xs.len(), len);
                    prop_assert!(len < 4, "len = {len}");
                    Ok(())
                },
            );
        });
        let msg = panic_message(result.unwrap_err());
        assert!(msg.contains("shrunk input: (4,"), "shrunk to the boundary: {msg}");
    }

    #[test]
    fn wide_tuples_generate_and_shrink() {
        let gen = (
            usize_range(0, 10),
            usize_range(0, 10),
            usize_range(0, 10),
            usize_range(0, 10),
            usize_range(0, 10),
            usize_range(0, 10),
            usize_range(0, 10),
        );
        let mut rng = Xoshiro256pp::seed_from_u64(41);
        let v = gen.generate(&mut rng);
        // shrinking a 7-tuple proposes per-slot candidates
        let cands = gen.shrink(&v);
        let nonzero_slots = [v.0, v.1, v.2, v.3, v.4, v.5, v.6].iter().filter(|&&x| x > 0).count();
        assert!(cands.len() >= nonzero_slots, "{v:?} -> {} candidates", cands.len());
    }

    #[test]
    fn exact_vec_length_is_fixed() {
        check_with(
            &Config { cases: 30, seed: 8, max_shrink_rounds: 10 },
            "exact-len",
            &(vec_exact(f64_range(0.0, 1.0), 25),),
            |(xs,)| {
                prop_assert_eq!(xs.len(), 25);
                Ok(())
            },
        );
    }
}

//! A counting wrapper around the system allocator, for asserting that
//! steady-state hot loops are allocation-free.
//!
//! The wrapper is always compiled (it is a handful of atomics) but does
//! nothing unless a binary installs it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: foundation::alloc_counter::CountingAllocator =
//!     foundation::alloc_counter::CountingAllocator;
//! ```
//!
//! The `steady_state` integration test does exactly that: warm up an
//! executor, snapshot [`allocation_count`] (and
//! [`crate::par::threads_spawned`]), run more iterations, and assert the
//! counters did not move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Total `alloc`/`realloc` calls since process start (0 unless a binary
/// installed [`CountingAllocator`] as its `#[global_allocator]`).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A `GlobalAlloc` that forwards to [`System`] and counts allocations.
pub struct CountingAllocator;

// SAFETY: pure pass-through to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

//! Endian-aware buffer read/write helpers replacing `bytes::{Buf, BufMut}`.
//!
//! Only the surface the workspace uses (plus the big-endian duals for
//! symmetry): appending to a `Vec<u8>` and consuming from a `&[u8]`
//! cursor. Reads panic when the buffer is too short — callers are
//! expected to check [`Buf::remaining`] first, exactly as with the
//! `bytes` crate.

/// Write side: append fixed-width values to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64_be(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian `f64`.
    fn put_f64_be(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read side: a consuming cursor over a byte slice.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy out the next `N` bytes.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Read a big-endian `u64`.
    fn get_u64_be(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }

    /// Read a big-endian `f64`.
    fn get_f64_be(&mut self) -> f64 {
        f64::from_be_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer: {n} > {}", self.len());
        *self = &self[n..];
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.len(), "read past end of buffer: need {N}, have {}", self.len());
        let mut out = [0u8; N];
        out.copy_from_slice(&self[..N]);
        *self = &self[N..];
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_values() {
        let mut v: Vec<u8> = Vec::new();
        v.put_slice(b"HDR");
        v.put_u8(3);
        v.put_u16_le(0xBEAD);
        v.put_u32_le(0xDEAD_BEEF);
        v.put_u64_le(u64::MAX - 1);
        v.put_u64_be(0x0102_0304_0506_0708);
        v.put_f64_le(-0.125);
        v.put_f64_be(std::f64::consts::E);

        let mut r: &[u8] = &v;
        assert_eq!(r.remaining(), v.len());
        r.advance(3);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.get_u16_le(), 0xBEAD);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_u64_be(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_f64_le(), -0.125);
        assert_eq!(r.get_f64_be(), std::f64::consts::E);
        assert!(!r.has_remaining());
    }

    #[test]
    fn endianness_is_byte_exact() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u64_le(1);
        v.put_u64_be(1);
        assert_eq!(&v[..8], &[1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(&v[8..], &[0, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn short_reads_panic() {
        let mut r: &[u8] = &[1, 2, 3];
        let _ = r.get_u64_le();
    }
}

//! Minimal JSON serialization replacing the `serde` derives.
//!
//! The workspace only ever *emitted* structured data (reports, traces,
//! counter dumps); nothing deserialized. So this module provides a JSON
//! value type, [`Json`], a [`ToJson`] trait the data-holding crates
//! implement by hand (no derive machinery), and a compact writer.
//!
//! Numbers: `u64`/`i64` are kept as integers and written exactly;
//! `f64` is written with enough digits to round-trip ([`fmt_f64`]), and
//! non-finite floats serialize as `null` (JSON has no NaN/Inf).

use std::collections::BTreeMap;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (written without a decimal point).
    Int(i64),
    /// An unsigned integer (counters; written exactly).
    UInt(u64),
    /// A double (written with round-trip precision).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<I>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array by mapping `items` through [`ToJson`].
    pub fn arr<'a, T: ToJson + 'a>(items: impl IntoIterator<Item = &'a T>) -> Json {
        Json::Arr(items.into_iter().map(ToJson::to_json).collect())
    }

    /// Parse a JSON document (the inverse of [`Json::dump`], added for
    /// reading bench baselines back). Numbers without a fraction or
    /// exponent parse as [`Json::UInt`]/[`Json::Int`] when they fit,
    /// [`Json::Num`] otherwise. Errors carry a byte offset.
    ///
    /// Nesting is bounded by [`MAX_DEPTH`]: the parser recurses per
    /// array/object level, so hostile input like a 100k-deep `[[[…`
    /// would otherwise overflow the stack. Deeper documents return a
    /// typed error (with the byte offset of the level that crossed the
    /// limit) instead.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int`/`UInt`/`Num` as `f64`, else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append the serialization of `self` to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => out.push_str(&fmt_f64(*x)),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Deepest array/object nesting [`Json::parse`] accepts. Each level is
/// one recursion frame, so the bound is what keeps a hostile
/// deeply-nested document from overflowing the stack; 128 is far beyond
/// anything the workspace writes (traces nest 3 levels, tuning DBs 4).
pub const MAX_DEPTH: usize = 128;

/// Recursive-descent parser state over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    /// Bump the nesting depth on entering an array/object; errors (with
    /// the opening bracket's byte offset) past [`MAX_DEPTH`]. The caller
    /// decrements on exit.
    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos.saturating_sub(1)
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.descend()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = tok.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = tok.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        let x =
            tok.parse::<f64>().map_err(|_| format!("invalid number '{tok}' at byte {start}"))?;
        // An overflowing literal (e.g. `1e999`) parses to ±inf, which
        // `dump` would then write as `null` — silently breaking the
        // dump→parse→dump round-trip the bench `--baseline` path relies
        // on. JSON has no non-finite numbers; reject at the source.
        if !x.is_finite() {
            return Err(format!("number '{tok}' overflows f64 at byte {start}"));
        }
        Ok(Json::Num(x))
    }
}

/// Format an `f64` so it parses back to the identical bits (shortest of
/// `{}` and, when that loses precision, `{:e}` with full digits), with
/// non-finite values mapped to `null`.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    // Rust's `{}` for f64 is already shortest-round-trip.
    let s = format!("{x}");
    // Ensure the token is valid JSON (it always is for finite floats:
    // optional sign, digits, optional fraction/exponent).
    s
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can serialize themselves to a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// Streaming reader for newline-delimited JSON (NDJSON).
///
/// Wraps any [`std::io::BufRead`] source and yields one parsed [`Json`]
/// document per non-blank line, reusing a single line buffer across calls
/// so steady-state reads do not grow the heap. Lines longer than
/// `max_line` bytes are rejected before parsing (a hostile peer cannot
/// force an unbounded buffer), and parse errors are reported with both
/// the line's starting byte offset in the stream and the in-line offset
/// from [`Json::parse`].
pub struct NdjsonReader<R: std::io::BufRead> {
    src: R,
    line: String,
    /// Byte offset in the stream where the *next* line begins.
    offset: u64,
    max_line: usize,
}

/// One failure from [`NdjsonReader::next_doc`]: the stream byte offset of
/// the offending line plus a human-readable message.
#[derive(Debug)]
pub struct NdjsonError {
    pub offset: u64,
    pub message: String,
}

impl std::fmt::Display for NdjsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (line starts at stream byte {})", self.message, self.offset)
    }
}

impl<R: std::io::BufRead> NdjsonReader<R> {
    /// Default per-line size cap: generous for job frames, small enough
    /// that a malicious never-ending "line" cannot exhaust memory.
    pub const DEFAULT_MAX_LINE: usize = 1 << 20;

    pub fn new(src: R) -> Self {
        Self::with_max_line(src, Self::DEFAULT_MAX_LINE)
    }

    pub fn with_max_line(src: R, max_line: usize) -> Self {
        NdjsonReader { src, line: String::new(), offset: 0, max_line }
    }

    /// Byte offset in the stream where the next line will begin.
    pub fn stream_offset(&self) -> u64 {
        self.offset
    }

    /// The raw text of the most recently read line (trailing newline
    /// stripped). Valid until the next `next_doc` call.
    pub fn last_line(&self) -> &str {
        self.line.trim_end_matches(['\n', '\r'])
    }

    /// Read the next non-blank line without parsing it (protocol servers
    /// that do their own frame decoding want the raw text). The returned
    /// slice borrows the reused internal buffer. Returns `Ok(None)` at
    /// end of stream.
    pub fn next_line(&mut self) -> Result<Option<&str>, NdjsonError> {
        loop {
            let start = self.offset;
            self.line.clear();
            let n = read_limited_line(&mut self.src, &mut self.line, self.max_line)
                .map_err(|message| NdjsonError { offset: start, message })?;
            if n == 0 {
                return Ok(None);
            }
            self.offset += n as u64;
            if self.line.trim().is_empty() {
                continue;
            }
            // borrow-checker friendly re-slice of the retained buffer
            break;
        }
        Ok(Some(self.line.trim_end_matches(['\n', '\r'])))
    }

    /// Read the next document. Blank lines are skipped. Returns
    /// `Ok(None)` at end of stream.
    pub fn next_doc(&mut self) -> Result<Option<Json>, NdjsonError> {
        loop {
            let start = self.offset;
            self.line.clear();
            let n = read_limited_line(&mut self.src, &mut self.line, self.max_line)
                .map_err(|message| NdjsonError { offset: start, message })?;
            if n == 0 {
                return Ok(None);
            }
            self.offset += n as u64;
            let text = self.line.trim_end_matches(['\n', '\r']);
            if text.trim().is_empty() {
                continue;
            }
            return match Json::parse(text) {
                Ok(doc) => Ok(Some(doc)),
                Err(message) => Err(NdjsonError { offset: start, message }),
            };
        }
    }
}

/// `read_line` with a byte cap: reads until `\n` or EOF, erroring once the
/// line exceeds `max_line` bytes (the rest of the oversized line is left
/// unread; callers treating this as fatal should drop the connection).
/// Returns the number of bytes consumed (0 at EOF).
fn read_limited_line<R: std::io::BufRead>(
    src: &mut R,
    out: &mut String,
    max_line: usize,
) -> Result<usize, String> {
    let mut buf = std::mem::take(out).into_bytes();
    let mut total = 0usize;
    let result = loop {
        let chunk = match src.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => break Err(format!("read error: {e}")),
        };
        if chunk.is_empty() {
            break Ok(total); // EOF (possibly mid-line)
        }
        let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (chunk.len(), false),
        };
        if total + take > max_line {
            break Err(format!("line exceeds {max_line} byte limit"));
        }
        buf.extend_from_slice(&chunk[..take]);
        src.consume(take);
        total += take;
        if done {
            break Ok(total);
        }
    };
    match String::from_utf8(buf) {
        Ok(s) => {
            *out = s;
            result
        }
        Err(e) => {
            *out = String::from_utf8_lossy(e.as_bytes()).into_owned();
            result.and_then(|_| Err("line is not valid UTF-8".to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize_exactly() {
        assert_eq!(Json::Null.dump(), "null");
        assert_eq!(Json::Bool(true).dump(), "true");
        assert_eq!(Json::Int(-7).dump(), "-7");
        assert_eq!(Json::UInt(u64::MAX).dump(), u64::MAX.to_string());
        assert_eq!(Json::Num(0.25).dump(), "0.25");
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
    }

    #[test]
    fn floats_round_trip_through_text() {
        for x in [0.1, 1.0 / 3.0, 1e-308, 1e308, std::f64::consts::PI, -0.0] {
            let s = fmt_f64(x);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!("a\"b\\c\nd".to_json().dump(), r#""a\"b\\c\nd""#);
        assert_eq!("\u{1}".to_json().dump(), "\"\\u0001\"");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let j = Json::obj([("b", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(j.dump(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::obj([
            ("name", "apply/LoRAStencil".to_json()),
            ("best_ns", Json::Num(343312.5)),
            ("iters", Json::UInt(96)),
            ("neg", Json::Int(-3)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("esc", "a\"b\\c\nd".to_json()),
        ]);
        let back = Json::parse(&j.dump()).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_junk() {
        let j = Json::parse(" [ 1 , {\"a\" : 2.5e3} ] ").unwrap();
        assert_eq!(j.as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(j.as_arr().unwrap()[1].get("a").and_then(Json::as_f64), Some(2500.0));
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn overflowing_literals_are_rejected_with_offset() {
        // 1e999 -> inf would dump as `null`, breaking dump→parse→dump
        for bad in ["1e999", "-1e999", "1e308e"] {
            assert!(Json::parse(bad).is_err(), "{bad} must not parse");
        }
        let err = Json::parse("[1, 1e999]").unwrap_err();
        assert!(err.contains("byte 4"), "error must carry the byte offset: {err}");
        assert!(err.contains("1e999"), "{err}");
        // underflow to zero and the largest finite literal stay legal
        assert_eq!(Json::parse("1e-999").unwrap().as_f64(), Some(0.0));
        assert_eq!(Json::parse("1e308").unwrap().as_f64(), Some(1e308));
    }

    /// Recursive [`Json`] generator for the round-trip property:
    /// scalars at every depth, arrays/objects while depth remains.
    /// Generated `Num`s are always finite (non-finite floats are
    /// unrepresentable in JSON text by design).
    struct JsonGen {
        depth: usize,
    }

    impl crate::prop::Gen for JsonGen {
        type Value = Json;

        fn generate(&self, rng: &mut crate::rng::Xoshiro256pp) -> Json {
            let arms = if self.depth == 0 { 6 } else { 8 };
            match rng.below_u64(arms) {
                0 => Json::Null,
                1 => Json::Bool(rng.below_u64(2) == 0),
                2 => Json::Int(rng.next_u64() as i64),
                3 => Json::UInt(rng.next_u64()),
                4 => {
                    let x = rng.range_f64(-1e9, 1e9);
                    // canonicalize -0.0: its text form `-0` reparses as 0
                    Json::Num(if x == 0.0 { 0.0 } else { x })
                }
                5 => {
                    let n = rng.range_usize(0, 8);
                    Json::Str(
                        (0..n)
                            .map(|_| {
                                *['a', 'β', '"', '\\', '\n', '\t', '/', '\u{1}', '𝄞', ' ']
                                    .get(rng.below_u64(10) as usize)
                                    .unwrap()
                            })
                            .collect(),
                    )
                }
                6 => {
                    let child = JsonGen { depth: self.depth - 1 };
                    let n = rng.range_usize(0, 4);
                    Json::Arr((0..n).map(|_| child.generate(rng)).collect())
                }
                _ => {
                    let child = JsonGen { depth: self.depth - 1 };
                    let n = rng.range_usize(0, 4);
                    Json::Obj((0..n).map(|i| (format!("k{i}"), child.generate(rng))).collect())
                }
            }
        }

        fn shrink(&self, v: &Json) -> Vec<Json> {
            match v {
                Json::Null => vec![],
                Json::Arr(items) if !items.is_empty() => {
                    let mut c = vec![Json::Arr(items[..items.len() - 1].to_vec())];
                    c.extend(items.iter().cloned());
                    c
                }
                Json::Obj(pairs) if !pairs.is_empty() => {
                    let mut c = vec![Json::Obj(pairs[..pairs.len() - 1].to_vec())];
                    c.extend(pairs.iter().map(|(_, v)| v.clone()));
                    c
                }
                _ => vec![Json::Null],
            }
        }
    }

    #[test]
    fn prop_dump_parse_dump_round_trips() {
        use crate::prop;
        prop::check("json_dump_parse_dump", &JsonGen { depth: 3 }, |j| {
            let text = j.dump();
            let back = Json::parse(&text).map_err(|e| format!("parse of {text:?}: {e}"))?;
            crate::prop::prop_assert_eq!(back.dump(), text);
            Ok(())
        });
    }

    #[test]
    fn nested_structures_compose() {
        let j = Json::obj([
            ("xs", vec![1u64, 2, 3].to_json()),
            ("name", "grid".to_json()),
            ("opt", (None as Option<u64>).to_json()),
        ]);
        assert_eq!(j.dump(), r#"{"xs":[1,2,3],"name":"grid","opt":null}"#);
    }

    #[test]
    fn hostile_deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        // 10k-deep array: without the depth guard this recurses 10k
        // frames and crashes the process instead of returning Err.
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper than"), "{err}");
        assert!(err.contains(&format!("{MAX_DEPTH} levels")), "{err}");
        assert!(err.contains(&format!("byte {MAX_DEPTH}")), "{err}");

        // same for objects
        let deep_obj = r#"{"a":"#.repeat(10_000) + "1" + &"}".repeat(10_000);
        assert!(Json::parse(&deep_obj).unwrap_err().contains("nesting deeper than"));

        // exactly MAX_DEPTH levels still parses; the depth counter must
        // unwind correctly so siblings at depth 2 don't accumulate
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
        let siblings = format!("[{}]", vec!["[[1]]"; 200].join(","));
        assert!(Json::parse(&siblings).is_ok(), "depth must reset between siblings");
        let obj_siblings = format!("[{}]", vec![r#"{"a":{"b":1}}"#; 200].join(","));
        assert!(Json::parse(&obj_siblings).is_ok(), "object depth must unwind too");
    }

    #[test]
    fn ndjson_reader_streams_documents_with_offsets() {
        let text = "{\"a\":1}\n\n  \n[2,3]\nnot json\n";
        let mut r = NdjsonReader::new(text.as_bytes());
        assert_eq!(r.stream_offset(), 0);
        let d1 = r.next_doc().unwrap().unwrap();
        assert_eq!(d1.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(r.last_line(), "{\"a\":1}");
        // blank lines are skipped; offset tracks the raw stream
        let d2 = r.next_doc().unwrap().unwrap();
        assert_eq!(d2.as_arr().unwrap().len(), 2);
        let err = r.next_doc().unwrap_err();
        assert_eq!(err.offset, 18, "offset of the line that failed to parse");
        assert!(err.message.contains("byte"), "{}", err.message);
        assert!(r.next_doc().unwrap().is_none(), "EOF after the bad line");
    }

    #[test]
    fn ndjson_reader_caps_line_length() {
        let long = format!("[{}]\n[1]\n", "1,".repeat(100));
        let mut r = NdjsonReader::with_max_line(long.as_bytes(), 64);
        let err = r.next_doc().unwrap_err();
        assert!(err.message.contains("64 byte limit"), "{}", err.message);
        // unterminated final line (EOF without newline) still parses
        let mut r2 = NdjsonReader::new("[7]".as_bytes());
        assert_eq!(r2.next_doc().unwrap().unwrap().as_arr().unwrap().len(), 1);
        assert!(r2.next_doc().unwrap().is_none());
    }
}

//! Minimal JSON serialization replacing the `serde` derives.
//!
//! The workspace only ever *emitted* structured data (reports, traces,
//! counter dumps); nothing deserialized. So this module provides a JSON
//! value type, [`Json`], a [`ToJson`] trait the data-holding crates
//! implement by hand (no derive machinery), and a compact writer.
//!
//! Numbers: `u64`/`i64` are kept as integers and written exactly;
//! `f64` is written with enough digits to round-trip ([`fmt_f64`]), and
//! non-finite floats serialize as `null` (JSON has no NaN/Inf).

use std::collections::BTreeMap;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (written without a decimal point).
    Int(i64),
    /// An unsigned integer (counters; written exactly).
    UInt(u64),
    /// A double (written with round-trip precision).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<I>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array by mapping `items` through [`ToJson`].
    pub fn arr<'a, T: ToJson + 'a>(items: impl IntoIterator<Item = &'a T>) -> Json {
        Json::Arr(items.into_iter().map(ToJson::to_json).collect())
    }

    /// Serialize to a compact JSON string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append the serialization of `self` to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => out.push_str(&fmt_f64(*x)),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Format an `f64` so it parses back to the identical bits (shortest of
/// `{}` and, when that loses precision, `{:e}` with full digits), with
/// non-finite values mapped to `null`.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    // Rust's `{}` for f64 is already shortest-round-trip.
    let s = format!("{x}");
    // Ensure the token is valid JSON (it always is for finite floats:
    // optional sign, digits, optional fraction/exponent).
    s
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can serialize themselves to a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize_exactly() {
        assert_eq!(Json::Null.dump(), "null");
        assert_eq!(Json::Bool(true).dump(), "true");
        assert_eq!(Json::Int(-7).dump(), "-7");
        assert_eq!(Json::UInt(u64::MAX).dump(), u64::MAX.to_string());
        assert_eq!(Json::Num(0.25).dump(), "0.25");
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
    }

    #[test]
    fn floats_round_trip_through_text() {
        for x in [0.1, 1.0 / 3.0, 1e-308, 1e308, std::f64::consts::PI, -0.0] {
            let s = fmt_f64(x);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!("a\"b\\c\nd".to_json().dump(), r#""a\"b\\c\nd""#);
        assert_eq!("\u{1}".to_json().dump(), "\"\\u0001\"");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let j = Json::obj([("b", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(j.dump(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn nested_structures_compose() {
        let j = Json::obj([
            ("xs", vec![1u64, 2, 3].to_json()),
            ("name", "grid".to_json()),
            ("opt", (None as Option<u64>).to_json()),
        ]);
        assert_eq!(j.dump(), r#"{"xs":[1,2,3],"name":"grid","opt":null}"#);
    }
}

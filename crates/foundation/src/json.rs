//! Minimal JSON serialization replacing the `serde` derives.
//!
//! The workspace only ever *emitted* structured data (reports, traces,
//! counter dumps); nothing deserialized. So this module provides a JSON
//! value type, [`Json`], a [`ToJson`] trait the data-holding crates
//! implement by hand (no derive machinery), and a compact writer.
//!
//! Numbers: `u64`/`i64` are kept as integers and written exactly;
//! `f64` is written with enough digits to round-trip ([`fmt_f64`]), and
//! non-finite floats serialize as `null` (JSON has no NaN/Inf).

use std::collections::BTreeMap;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (written without a decimal point).
    Int(i64),
    /// An unsigned integer (counters; written exactly).
    UInt(u64),
    /// A double (written with round-trip precision).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<I>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array by mapping `items` through [`ToJson`].
    pub fn arr<'a, T: ToJson + 'a>(items: impl IntoIterator<Item = &'a T>) -> Json {
        Json::Arr(items.into_iter().map(ToJson::to_json).collect())
    }

    /// Parse a JSON document (the inverse of [`Json::dump`], added for
    /// reading bench baselines back). Numbers without a fraction or
    /// exponent parse as [`Json::UInt`]/[`Json::Int`] when they fit,
    /// [`Json::Num`] otherwise. Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int`/`UInt`/`Num` as `f64`, else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append the serialization of `self` to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => out.push_str(&fmt_f64(*x)),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Recursive-descent parser state over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = tok.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = tok.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        let x =
            tok.parse::<f64>().map_err(|_| format!("invalid number '{tok}' at byte {start}"))?;
        // An overflowing literal (e.g. `1e999`) parses to ±inf, which
        // `dump` would then write as `null` — silently breaking the
        // dump→parse→dump round-trip the bench `--baseline` path relies
        // on. JSON has no non-finite numbers; reject at the source.
        if !x.is_finite() {
            return Err(format!("number '{tok}' overflows f64 at byte {start}"));
        }
        Ok(Json::Num(x))
    }
}

/// Format an `f64` so it parses back to the identical bits (shortest of
/// `{}` and, when that loses precision, `{:e}` with full digits), with
/// non-finite values mapped to `null`.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    // Rust's `{}` for f64 is already shortest-round-trip.
    let s = format!("{x}");
    // Ensure the token is valid JSON (it always is for finite floats:
    // optional sign, digits, optional fraction/exponent).
    s
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can serialize themselves to a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize_exactly() {
        assert_eq!(Json::Null.dump(), "null");
        assert_eq!(Json::Bool(true).dump(), "true");
        assert_eq!(Json::Int(-7).dump(), "-7");
        assert_eq!(Json::UInt(u64::MAX).dump(), u64::MAX.to_string());
        assert_eq!(Json::Num(0.25).dump(), "0.25");
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
    }

    #[test]
    fn floats_round_trip_through_text() {
        for x in [0.1, 1.0 / 3.0, 1e-308, 1e308, std::f64::consts::PI, -0.0] {
            let s = fmt_f64(x);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!("a\"b\\c\nd".to_json().dump(), r#""a\"b\\c\nd""#);
        assert_eq!("\u{1}".to_json().dump(), "\"\\u0001\"");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let j = Json::obj([("b", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(j.dump(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::obj([
            ("name", "apply/LoRAStencil".to_json()),
            ("best_ns", Json::Num(343312.5)),
            ("iters", Json::UInt(96)),
            ("neg", Json::Int(-3)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("esc", "a\"b\\c\nd".to_json()),
        ]);
        let back = Json::parse(&j.dump()).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_junk() {
        let j = Json::parse(" [ 1 , {\"a\" : 2.5e3} ] ").unwrap();
        assert_eq!(j.as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(j.as_arr().unwrap()[1].get("a").and_then(Json::as_f64), Some(2500.0));
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn overflowing_literals_are_rejected_with_offset() {
        // 1e999 -> inf would dump as `null`, breaking dump→parse→dump
        for bad in ["1e999", "-1e999", "1e308e"] {
            assert!(Json::parse(bad).is_err(), "{bad} must not parse");
        }
        let err = Json::parse("[1, 1e999]").unwrap_err();
        assert!(err.contains("byte 4"), "error must carry the byte offset: {err}");
        assert!(err.contains("1e999"), "{err}");
        // underflow to zero and the largest finite literal stay legal
        assert_eq!(Json::parse("1e-999").unwrap().as_f64(), Some(0.0));
        assert_eq!(Json::parse("1e308").unwrap().as_f64(), Some(1e308));
    }

    /// Recursive [`Json`] generator for the round-trip property:
    /// scalars at every depth, arrays/objects while depth remains.
    /// Generated `Num`s are always finite (non-finite floats are
    /// unrepresentable in JSON text by design).
    struct JsonGen {
        depth: usize,
    }

    impl crate::prop::Gen for JsonGen {
        type Value = Json;

        fn generate(&self, rng: &mut crate::rng::Xoshiro256pp) -> Json {
            let arms = if self.depth == 0 { 6 } else { 8 };
            match rng.below_u64(arms) {
                0 => Json::Null,
                1 => Json::Bool(rng.below_u64(2) == 0),
                2 => Json::Int(rng.next_u64() as i64),
                3 => Json::UInt(rng.next_u64()),
                4 => {
                    let x = rng.range_f64(-1e9, 1e9);
                    // canonicalize -0.0: its text form `-0` reparses as 0
                    Json::Num(if x == 0.0 { 0.0 } else { x })
                }
                5 => {
                    let n = rng.range_usize(0, 8);
                    Json::Str(
                        (0..n)
                            .map(|_| {
                                *['a', 'β', '"', '\\', '\n', '\t', '/', '\u{1}', '𝄞', ' ']
                                    .get(rng.below_u64(10) as usize)
                                    .unwrap()
                            })
                            .collect(),
                    )
                }
                6 => {
                    let child = JsonGen { depth: self.depth - 1 };
                    let n = rng.range_usize(0, 4);
                    Json::Arr((0..n).map(|_| child.generate(rng)).collect())
                }
                _ => {
                    let child = JsonGen { depth: self.depth - 1 };
                    let n = rng.range_usize(0, 4);
                    Json::Obj((0..n).map(|i| (format!("k{i}"), child.generate(rng))).collect())
                }
            }
        }

        fn shrink(&self, v: &Json) -> Vec<Json> {
            match v {
                Json::Null => vec![],
                Json::Arr(items) if !items.is_empty() => {
                    let mut c = vec![Json::Arr(items[..items.len() - 1].to_vec())];
                    c.extend(items.iter().cloned());
                    c
                }
                Json::Obj(pairs) if !pairs.is_empty() => {
                    let mut c = vec![Json::Obj(pairs[..pairs.len() - 1].to_vec())];
                    c.extend(pairs.iter().map(|(_, v)| v.clone()));
                    c
                }
                _ => vec![Json::Null],
            }
        }
    }

    #[test]
    fn prop_dump_parse_dump_round_trips() {
        use crate::prop;
        prop::check("json_dump_parse_dump", &JsonGen { depth: 3 }, |j| {
            let text = j.dump();
            let back = Json::parse(&text).map_err(|e| format!("parse of {text:?}: {e}"))?;
            crate::prop::prop_assert_eq!(back.dump(), text);
            Ok(())
        });
    }

    #[test]
    fn nested_structures_compose() {
        let j = Json::obj([
            ("xs", vec![1u64, 2, 3].to_json()),
            ("name", "grid".to_json()),
            ("opt", (None as Option<u64>).to_json()),
        ]);
        assert_eq!(j.dump(), r#"{"xs":[1,2,3],"name":"grid","opt":null}"#);
    }
}

//! Deterministic pseudo-random number generation replacing `rand`.
//!
//! Two classic generators with published reference outputs:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer; used for
//!   seeding and for cheap independent streams.
//! * [`Xoshiro256pp`] — Blackman & Vigna's xoshiro256++, the
//!   general-purpose generator behind the property harness.
//!
//! Everything is seed-stable by construction: the same seed produces the
//! same sequence on every platform and every run, which is what makes
//! the property suite reproducible (`same seed → same cases`).

/// SplitMix64: a tiny, fast, well-mixed 64-bit generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (public-domain reference algorithm by David Blackman
/// and Sebastiano Vigna).
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed the full 256-bit state from one `u64` via SplitMix64, as the
    /// xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256pp { s }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty range [{lo}, {hi})");
        let v = lo + self.next_f64() * (hi - lo);
        // guard against lo + 1.0*(hi-lo) rounding up to hi
        if v >= hi {
            lo
        } else {
            v
        }
    }

    /// Uniform `u64` in `[0, n)` (Lemire-style rejection-free enough for
    /// test generation; uses modulo with a 128-bit multiply reduction).
    pub fn below_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below_u64(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 1234567 (from the published
        // splitmix64.c test vectors).
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..5).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423,
                4593380528125082431,
                16408922859458223821,
            ]
        );
    }

    #[test]
    fn xoshiro_is_seed_stable() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256pp::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut r = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.range_f64(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut r = Xoshiro256pp::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.range_usize(0, 10)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    #[test]
    fn next_f64_is_uniformish() {
        let mut r = Xoshiro256pp::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}

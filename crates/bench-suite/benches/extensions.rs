//! Benchmarks (foundation's in-tree harness) of the extension subsystems: the FP16 fragment
//! model, the kernel-spec parser, grid checkpoint I/O, CUDA-listing
//! generation, and distributed execution.

use foundation::bench::{black_box, Bench};
use lorastencil::{codegen, ExecConfig, Plan};
use stencil_core::{io, kernels, spec, Grid2D, GridData};
use tcu_sim::fp16::{quantize_f16, Acc16, Frag16};
use tcu_sim::SimContext;

fn bench_fp16(c: &mut Bench) {
    c.bench_function("fp16_quantize", |b| b.iter(|| quantize_f16(black_box(0.123456789))));
    let mut ctx = SimContext::new();
    let a = Frag16::from_fn(|i, j| (i as f64 - j as f64) * 0.1);
    let bb = Frag16::from_fn(|i, j| (i + j) as f64 * 0.05);
    c.bench_function("mma16_m16n16k16", |b| {
        b.iter(|| black_box(ctx.mma16(black_box(&a), black_box(&bb), &Acc16::zero())))
    });
}

fn bench_spec(c: &mut Bench) {
    let text = spec::render_kernel(&kernels::box_2d49p());
    c.bench_function("spec_parse_7x7", |b| {
        b.iter(|| spec::parse_kernel(black_box(&text)).unwrap())
    });
    c.bench_function("spec_render_7x7", |b| {
        let k = kernels::box_2d49p();
        b.iter(|| spec::render_kernel(black_box(&k)))
    });
}

fn bench_io(c: &mut Bench) {
    let g = GridData::D2(Grid2D::from_fn(128, 128, |r, cc| (r * cc) as f64 * 0.01));
    c.bench_function("io_encode_128x128", |b| b.iter(|| io::encode(black_box(&g))));
    let bytes = io::encode(&g);
    c.bench_function("io_decode_128x128", |b| b.iter(|| io::decode(black_box(&bytes)).unwrap()));
}

fn bench_codegen(c: &mut Bench) {
    let plan = Plan::new(&kernels::box_2d49p(), ExecConfig::full());
    c.bench_function("codegen_emit_box2d49p", |b| b.iter(|| codegen::emit_cuda(black_box(&plan))));
}

fn bench_distributed(c: &mut Bench) {
    let grid = Grid2D::from_fn(128, 64, |r, cc| (r + cc) as f64 * 0.1);
    c.bench_function("distributed_4dev_128x64", |b| {
        b.iter(|| {
            multi_gpu::run_distributed(
                black_box(&kernels::box_2d9p()),
                black_box(&grid),
                3,
                4,
                ExecConfig::full(),
            )
        })
    });
}

fn main() {
    let mut c = Bench::from_args();
    bench_fp16(&mut c);
    bench_spec(&mut c);
    bench_io(&mut c);
    bench_codegen(&mut c);
    bench_distributed(&mut c);
    c.finish();
}

//! Benchmarks (foundation's in-tree harness) of whole-grid executor passes: one stencil
//! application of every method (LoRAStencil and the six baselines) plus
//! the naive reference, on a 64×64 grid. Wall time here measures the
//! functional simulation's own throughput; the modeled A100 GStencil/s
//! comes from the `fig8` binary.

use foundation::bench::{black_box, Bench, BenchmarkId};
use lorastencil::plan::DeviceBackend;
use lorastencil::{ExecConfig, LoRaStencil};
use stencil_core::{kernels, reference, Grid2D, GridData, Problem, StencilExecutor};

fn bench_apply_2d(c: &mut Bench) {
    let grid = Grid2D::from_fn(64, 64, |r, cc| ((r * 13 + cc * 7) % 17) as f64 * 0.3);
    let kernel = kernels::box_2d49p();
    let problem = Problem::new(kernel.clone(), grid.clone(), 1);

    let mut group = c.benchmark_group("apply_box2d49p_64x64");
    group.bench_function("reference", |b| {
        b.points(64 * 64).iter(|| reference::run(black_box(&problem.input), &problem.kernel, 1))
    });
    group.bench_function("LoRAStencil", |b| {
        let exec = LoRaStencil::new();
        b.points(64 * 64).iter(|| exec.execute(black_box(&problem)).unwrap())
    });
    for exec in baselines::all_baselines() {
        group.bench_with_input(BenchmarkId::new("baseline", exec.name()), &problem, |b, p| {
            b.points(64 * 64).iter(|| exec.execute(black_box(p)).unwrap())
        });
    }
    group.finish();
}

fn bench_backends(c: &mut Bench) {
    // the four device backends on one star kernel (sparse-friendly U
    // factors) — the guard watches SparseTcu/SimdCore alongside the
    // defaults so a regression in either new path fails CI
    let grid = Grid2D::from_fn(64, 64, |r, cc| ((r * 11 + cc * 5) % 23) as f64 * 0.2);
    let problem = Problem::new(kernels::heat_2d(), grid, 1);
    let mut group = c.benchmark_group("backend_heat2d_64x64");
    let backends = [
        ("tcu", DeviceBackend::TcuF64),
        ("sparse", DeviceBackend::SparseTcu),
        ("simd", DeviceBackend::SimdCore),
        ("cuda", DeviceBackend::CudaCore),
    ];
    for (name, backend) in backends {
        group.bench_with_input(BenchmarkId::new("backend", name), &problem, |b, p| {
            let exec = LoRaStencil::with_config(ExecConfig { backend, ..ExecConfig::full() });
            b.points(64 * 64).iter(|| exec.execute(black_box(p)).unwrap())
        });
    }
    group.finish();
}

fn bench_iterated(c: &mut Bench) {
    // fused multi-iteration pass: the planner folds 6 steps into 2 fused
    // applications
    let grid = Grid2D::from_fn(64, 64, |r, cc| (r + cc) as f64 * 0.1);
    let problem = Problem::new(kernels::box_2d9p(), GridData::D2(grid), 6);
    c.bench_function("lora_box2d9p_6steps_fused", |b| {
        let exec = LoRaStencil::new();
        b.points(6 * 64 * 64).iter(|| exec.execute(black_box(&problem)).unwrap())
    });
}

fn bench_3d(c: &mut Bench) {
    let grid = stencil_core::Grid3D::from_fn(6, 24, 24, |z, y, x| (z + y * 2 + x) as f64 * 0.05);
    let problem = Problem::new(kernels::heat_3d(), GridData::D3(grid.clone()), 1);
    c.bench_function("lora_heat3d_6x24x24", |b| {
        let exec = LoRaStencil::new();
        b.points(6 * 24 * 24).iter(|| exec.execute(black_box(&problem)).unwrap())
    });
    // multi-iteration steady state: the Stepper loop reuses every
    // buffer, so per-step cost drops well below the single-apply bench
    let problem6 = Problem::new(kernels::heat_3d(), GridData::D3(grid), 6);
    c.bench_function("lora_heat3d_6x24x24_6steps", |b| {
        let exec = LoRaStencil::new();
        b.points(6 * 6 * 24 * 24).iter(|| exec.execute(black_box(&problem6)).unwrap())
    });
}

fn main() {
    let mut c = Bench::from_args();
    bench_apply_2d(&mut c);
    bench_backends(&mut c);
    bench_iterated(&mut c);
    bench_3d(&mut c);
    c.finish();
}

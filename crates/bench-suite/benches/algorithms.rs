//! Benchmarks (foundation's in-tree harness) of the LoRAStencil algorithm components:
//! decomposition strategies (PMA pyramid, star split, Jacobi eigen,
//! Jacobi SVD), the RDG tile chain (with and without BVS), and the
//! kernel-fusion convolution.

use foundation::bench::{black_box, Bench};
use lorastencil::decompose::{eigen, pyramid, star, svd};
use lorastencil::rdg::{rdg_apply_term, RdgGeometry, XFragments};
use lorastencil::{decompose, fusion};
use stencil_core::kernels;
use tcu_sim::{FragAcc, SharedTile, SimContext};

fn bench_decompose(c: &mut Bench) {
    let box49 = kernels::box_2d49p();
    let w = box49.weights_2d();
    c.bench_function("decompose_pyramidal_7x7", |b| {
        b.iter(|| pyramid::pyramidal(black_box(w), 1e-12).unwrap())
    });
    c.bench_function("decompose_eigen_7x7", |b| {
        b.iter(|| eigen::eigen(black_box(w), 1e-12).unwrap())
    });
    c.bench_function("decompose_svd_7x7", |b| b.iter(|| svd::svd(black_box(w), 1e-12)));
    let star13 = kernels::star_2d13p();
    c.bench_function("decompose_star_7x7", |b| {
        b.iter(|| star::star(black_box(star13.weights_2d()), 1e-12).unwrap())
    });
    c.bench_function("decompose_auto_7x7", |b| {
        b.iter(|| decompose::decompose(black_box(w), 1e-12))
    });
}

fn bench_rdg_tile(c: &mut Bench) {
    let geo = RdgGeometry::for_radius(3);
    let mut tile = SharedTile::new(geo.s, geo.s);
    for r in 0..geo.s {
        for cc in 0..geo.s {
            tile.poke(r, cc, ((r * 31 + cc * 7) % 13) as f64 * 0.4);
        }
    }
    let k = kernels::box_2d49p();
    let d = decompose::decompose(k.weights_2d(), 1e-12);

    c.bench_function("rdg_full_tile_bvs", |b| {
        b.iter(|| {
            let mut ctx = SimContext::new();
            let x = XFragments::load(&mut ctx, &tile, geo);
            let mut acc = FragAcc::zero();
            for t in &d.terms {
                acc = rdg_apply_term(&mut ctx, &x, t, true, acc);
            }
            black_box(acc)
        })
    });
    c.bench_function("rdg_full_tile_no_bvs", |b| {
        b.iter(|| {
            let mut ctx = SimContext::new();
            let x = XFragments::load(&mut ctx, &tile, geo);
            let mut acc = FragAcc::zero();
            for t in &d.terms {
                acc = rdg_apply_term(&mut ctx, &x, t, false, acc);
            }
            black_box(acc)
        })
    });
}

fn bench_fusion(c: &mut Bench) {
    let k9 = kernels::box_2d9p();
    c.bench_function("fuse_box_2d9p_3x", |b| b.iter(|| fusion::fuse_kernel(black_box(&k9), 3)));
    let k3d = kernels::heat_3d();
    c.bench_function("fuse_heat_3d_2x", |b| b.iter(|| fusion::fuse_kernel(black_box(&k3d), 2)));
}

fn main() {
    let mut c = Bench::from_args();
    bench_decompose(&mut c);
    bench_rdg_tile(&mut c);
    bench_fusion(&mut c);
    c.finish();
}

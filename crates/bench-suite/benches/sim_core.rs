//! Criterion micro-benchmarks of the simulator substrate: the `m8n8k4`
//! MMA, fragment extraction (the BVS hot path) and shared-tile fragment
//! loads. These time the *reproduction's* Rust hot paths (the functional
//! simulation itself), complementing the modeled-GStencil/s harness.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tcu_sim::{FragA, FragAcc, FragB, SharedTile, SimContext};

fn bench_mma(c: &mut Criterion) {
    let mut ctx = SimContext::new();
    let a = FragA::from_matrix(&[[1.25; 4]; 8]);
    let b = FragB::from_matrix(&[[0.75; 8]; 4]);
    let acc = FragAcc::zero();
    c.bench_function("mma_m8n8k4_f64", |bench| {
        bench.iter(|| black_box(ctx.mma(black_box(&a), black_box(&b), black_box(&acc))))
    });
}

fn bench_extract(c: &mut Criterion) {
    let mut m = [[0.0; 8]; 8];
    for (r, row) in m.iter_mut().enumerate() {
        for (cc, v) in row.iter_mut().enumerate() {
            *v = (r * 8 + cc) as f64;
        }
    }
    let acc = FragAcc::from_matrix(&m);
    c.bench_function("acc_extract_butterfly", |bench| {
        bench.iter(|| black_box(acc.extract_a(black_box(FragAcc::BUTTERFLY_COLS[0]))))
    });
    c.bench_function("acc_extract_natural", |bench| {
        bench.iter(|| black_box(acc.extract_a(black_box(FragAcc::NATURAL_COLS[0]))))
    });
}

fn bench_shared_loads(c: &mut Criterion) {
    let mut tile = SharedTile::new(16, 16);
    for r in 0..16 {
        for cc in 0..16 {
            tile.poke(r, cc, (r * 16 + cc) as f64);
        }
    }
    let mut ctx = SimContext::new();
    c.bench_function("shared_load_frag_b", |bench| {
        bench.iter(|| black_box(tile.load_frag_b(&mut ctx, black_box(4), black_box(8))))
    });
    c.bench_function("shared_load_frag_a", |bench| {
        bench.iter(|| black_box(tile.load_frag_a(&mut ctx, black_box(2), black_box(4))))
    });
}

criterion_group!(benches, bench_mma, bench_extract, bench_shared_loads);
criterion_main!(benches);

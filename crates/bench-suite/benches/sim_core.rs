//! Micro-benchmarks (foundation's in-tree harness) of the simulator substrate: the `m8n8k4`
//! MMA, fragment extraction (the BVS hot path) and shared-tile fragment
//! loads. These time the *reproduction's* Rust hot paths (the functional
//! simulation itself), complementing the modeled-GStencil/s harness.

use foundation::bench::{black_box, Bench};
use tcu_sim::{FragA, FragAcc, FragB, SharedTile, SimContext};

fn bench_mma(c: &mut Bench) {
    let mut ctx = SimContext::new();
    let a = FragA::from_matrix(&[[1.25; 4]; 8]);
    let b = FragB::from_matrix(&[[0.75; 8]; 4]);
    let acc = FragAcc::zero();
    c.bench_function("mma_m8n8k4_f64", |bench| {
        bench.iter(|| black_box(ctx.mma(black_box(&a), black_box(&b), black_box(&acc))))
    });
}

fn bench_extract(c: &mut Bench) {
    let mut m = [[0.0; 8]; 8];
    for (r, row) in m.iter_mut().enumerate() {
        for (cc, v) in row.iter_mut().enumerate() {
            *v = (r * 8 + cc) as f64;
        }
    }
    let acc = FragAcc::from_matrix(&m);
    c.bench_function("acc_extract_butterfly", |bench| {
        bench.iter(|| black_box(acc.extract_a(black_box(FragAcc::BUTTERFLY_COLS[0]))))
    });
    c.bench_function("acc_extract_natural", |bench| {
        bench.iter(|| black_box(acc.extract_a(black_box(FragAcc::NATURAL_COLS[0]))))
    });
}

fn bench_shared_loads(c: &mut Bench) {
    let mut tile = SharedTile::new(16, 16);
    for r in 0..16 {
        for cc in 0..16 {
            tile.poke(r, cc, (r * 16 + cc) as f64);
        }
    }
    let mut ctx = SimContext::new();
    c.bench_function("shared_load_frag_b", |bench| {
        bench.iter(|| black_box(tile.load_frag_b(&mut ctx, black_box(4), black_box(8))))
    });
    c.bench_function("shared_load_frag_a", |bench| {
        bench.iter(|| black_box(tile.load_frag_a(&mut ctx, black_box(2), black_box(4))))
    });
}

fn main() {
    let mut c = Bench::from_args();
    bench_mma(&mut c);
    bench_extract(&mut c);
    bench_shared_loads(&mut c);
    c.finish();
}

//! Ablation studies of the design choices `DESIGN.md` calls out:
//!
//! 1. **Decomposition strategy** — every applicable strategy per kernel,
//!    priced by measured per-tile counters (does the paper's PMA beat a
//!    plain eigendecomposition? when does the autotuner diverge?).
//! 2. **Fusion factor** — the §IV-A temporal-fusion depth sweep: the
//!    paper fixes 3×; the sweep shows the sweet spot and the cliff when
//!    the fused radius no longer fits the 16×16 tile.
//! 3. **Cost-model sensitivity** — the headline LoRA/ConvStencil
//!    geomean under perturbed calibration constants (are the paper-shape
//!    conclusions robust to the calibration?).

use crate::report::{format_table, geomean};
use crate::runner::evaluate;
use crate::workloads;
use lorastencil::rdg::RdgGeometry;
use lorastencil::schedule::apply_once;
use lorastencil::{autotune, decompose, fusion, ExecConfig, LoRaStencil, Plan};
use stencil_core::{kernels, Grid2D, StencilKernel};
use tcu_sim::{CostModel, GlobalArray, PerfCounters};

/// Run one custom plan over a grid and return counters.
fn run_plan(plan: &Plan, n: usize) -> PerfCounters {
    let grid = Grid2D::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 23) as f64 * 0.2);
    let input = GlobalArray::from_vec(n, n, grid.as_slice().to_vec());
    let (_, counters) = apply_once(&input, plan);
    counters
}

/// Study 1: decomposition-strategy ablation on the fused 2-D kernels.
pub fn decomposition_ablation(model: &CostModel) -> String {
    let mut rows = Vec::new();
    for k in kernels::all_kernels() {
        if k.dims() != 2 {
            continue;
        }
        let fused = fusion::fuse_kernel(&k, fusion::fusion_factor(&k));
        let geo = RdgGeometry::for_radius(fused.radius);
        let base_plan = Plan::new(&k, ExecConfig::full());
        for cand in autotune::candidates(fused.weights_2d(), 1e-12) {
            if cand.reconstruction_error(fused.weights_2d()) > 1e-8 {
                continue;
            }
            let plan = base_plan.with_decomposition(cand.clone());
            let counters = run_plan(&plan, 64);
            let est = model.estimate(&counters, &plan.block_resources());
            rows.push(vec![
                fused.name.clone(),
                format!("{:?}", cand.strategy),
                cand.num_terms().to_string(),
                (cand.num_terms() as u64 * geo.mma_per_term()).to_string(),
                format!("{:.1}", est.gstencil_per_sec(counters.points_updated)),
            ]);
        }
    }
    let header: Vec<String> = ["Kernel (fused)", "Strategy", "Terms", "MMA/tile", "GStencil/s"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = String::from(
        "Ablation 1 — decomposition strategy (same executor, same tiles, measured counters)\n\n",
    );
    out.push_str(&format_table(&header, &rows));
    out.push_str("\nPyramidal wins ties by construction (decreasing term sizes, free 1x1 tip);\nthe autotuner only diverges when the matrix rank is below the pyramid's term count.\n");
    out
}

/// Study 2: temporal-fusion depth sweep for Box-2D9P (§IV-A fixes 3×).
pub fn fusion_sweep(model: &CostModel) -> String {
    let base = kernels::box_2d9p();
    let mut rows = Vec::new();
    for t in 1..=5usize {
        let fused = fusion::fuse_kernel(&base, t);
        let decomp = decompose::decompose(fused.weights_2d(), 1e-12);
        let geo = RdgGeometry::for_radius(fused.radius);
        let plan = Plan::custom_2d(fused.clone(), t, decomp.clone(), ExecConfig::full());
        let counters = run_plan(&plan, 96);
        let est = model.estimate(&counters, &plan.block_resources());
        rows.push(vec![
            format!("{t}x"),
            fused.radius.to_string(),
            geo.s.to_string(),
            decomp.num_terms().to_string(),
            format!("{:.2}", counters.mma_ops as f64 / counters.points_updated as f64),
            format!("{:.1}", est.gstencil_per_sec(counters.points_updated)),
        ]);
    }
    let header: Vec<String> =
        ["Fusion", "Radius", "Tile S", "Terms", "MMA/point-step", "GStencil/s"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let mut out =
        String::from("Ablation 2 — temporal fusion depth, Box-2D9P (the paper fixes 3x)\n\n");
    out.push_str(&format_table(&header, &rows));
    out.push_str("\nFusing amortizes the tile traffic over more time steps until the fused\nradius outgrows the 16x16 tile (S jumps to 24 at 5x) — the paper's 3x sits\non the flat part of the optimum.\n");
    out
}

/// Study 3: sensitivity of the headline LoRA/ConvStencil geomean to the
/// calibrated cost-model constants.
pub fn sensitivity(base: &CostModel) -> String {
    let wls = workloads::reduced(workloads::table_ii());
    let headline = |model: &CostModel| -> f64 {
        let ratios: Vec<f64> = wls
            .iter()
            .map(|w| {
                let lora = evaluate(&LoRaStencil::new(), w, model);
                let conv = evaluate(&baselines::ConvStencil::new(), w, model);
                lora.gstencil / conv.gstencil
            })
            .collect();
        geomean(&ratios)
    };

    let mut rows =
        vec![vec!["baseline".to_string(), String::new(), format!("{:.2}x", headline(base))]];
    let mut push = |name: &str, value: String, m: CostModel| {
        rows.push(vec![name.to_string(), value, format!("{:.2}x", headline(&m))]);
    };
    for f in [0.5, 0.9] {
        let mut m = base.clone();
        m.achievable_fraction = f;
        push("achievable_fraction", format!("{f}"), m);
    }
    for f in [0.3, 1.0] {
        let mut m = base.clone();
        m.staging_overhead = f;
        push("staging_overhead", format!("{f}"), m);
    }
    for f in [33.0, 100.0] {
        let mut m = base.clone();
        m.shuffle_exposed_cycles = f;
        push("shuffle_exposed_cycles", format!("{f}"), m);
    }
    for f in [0.2, 0.5] {
        let mut m = base.clone();
        m.latency_saturation_occupancy = f;
        push("latency_saturation_occ", format!("{f}"), m);
    }
    let header: Vec<String> = ["Perturbed constant", "Value", "LoRA/ConvStencil geomean"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = String::from(
        "Ablation 3 — cost-model sensitivity of the headline speedup (paper: 1.37x)\n\n",
    );
    out.push_str(&format_table(&header, &rows));
    out.push_str("\nThe LoRAStencil advantage persists under every perturbation: it is driven\nby the measured counter ratios, not by the calibration constants.\n");
    out
}

/// Headline LoRA/ConvStencil geomean for a model (exposed for tests).
pub fn headline_ratio(model: &CostModel) -> f64 {
    let wls = workloads::reduced(workloads::table_ii());
    let ratios: Vec<f64> = wls
        .iter()
        .map(|w| {
            let lora = evaluate(&LoRaStencil::new(), w, model);
            let conv = evaluate(&baselines::ConvStencil::new(), w, model);
            lora.gstencil / conv.gstencil
        })
        .collect();
    geomean(&ratios)
}

/// Autotune-vs-default planning comparison across every 2-D kernel
/// (including the extended library).
pub fn autotune_report() -> String {
    let mut rows = Vec::new();
    let mut all: Vec<StencilKernel> = kernels::all_kernels();
    all.extend(stencil_core::kernels_ext::all_extended());
    for k in all {
        if k.dims() != 2 {
            continue;
        }
        let d = Plan::new(&k, ExecConfig::full());
        let a = Plan::new_autotuned(&k, ExecConfig::full());
        rows.push(vec![
            k.name.clone(),
            format!("{:?} ({})", d.decomp().strategy, d.decomp().num_terms()),
            format!("{:?} ({})", a.decomp().strategy, a.decomp().num_terms()),
            if autotune::tile_cost(a.decomp(), a.geo) < autotune::tile_cost(d.decomp(), d.geo) {
                "autotune wins".to_string()
            } else {
                "tie".to_string()
            },
        ]);
    }
    let header: Vec<String> = ["Kernel", "Default (terms)", "Autotuned (terms)", "Outcome"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = String::from("Ablation 4 — autotuned vs precedence-based planning\n\n");
    out.push_str(&format_table(&header, &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_survives_perturbation() {
        // the central robustness claim of study 3, asserted
        let base = CostModel::a100();
        for f in [0.5, 0.9] {
            let mut m = base.clone();
            m.achievable_fraction = f;
            assert!(headline_ratio(&m) > 1.0, "LoRA must keep winning at fraction {f}");
        }
        let mut m = base.clone();
        m.latency_saturation_occupancy = 0.2;
        assert!(headline_ratio(&m) > 1.0);
    }

    #[test]
    fn fusion_sweep_renders() {
        let s = fusion_sweep(&CostModel::a100());
        assert!(s.contains("3x"));
        assert!(s.contains("5x"));
    }

    #[test]
    fn decomposition_ablation_covers_all_2d_kernels() {
        let s = decomposition_ablation(&CostModel::a100());
        for name in ["Heat-2Dx3", "Box-2D9Px3", "Star-2D13P", "Box-2D49P"] {
            assert!(s.contains(name), "{name} missing");
        }
    }
}

//! # bench-suite — the LoRAStencil evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§V) on
//! the simulated A100:
//!
//! * `cargo run -p bench-suite --release --bin fig8` — Fig. 8 comparison
//! * `cargo run -p bench-suite --release --bin fig9` — Fig. 9 breakdown
//! * `cargo run -p bench-suite --release --bin fig10` — Fig. 10 requests
//! * `cargo run -p bench-suite --release --bin table3` — Table III
//! * `cargo run -p bench-suite --release --bin analysis` — Eq. 12–16
//! * `cargo run -p bench-suite --release --bin ablation` — design-choice ablations
//! * `cargo run -p bench-suite --release --bin paper` — everything
//!
//! Criterion micro-benchmarks (`cargo bench`) time the real Rust hot
//! paths of the simulator and the algorithms.

pub mod ablation;
pub mod figures;
pub mod fp16_study;
pub mod loadgen;
pub mod report;
pub mod runner;
pub mod workloads;

pub use figures::{
    fig10, fig8, fig9, fig_backends, render_analysis, render_fig10, render_portability,
    render_table3, table3, table_portability, FigBackends, PortabilityRow,
};
pub use runner::{evaluate, MethodResult};
pub use workloads::{table_ii, Workload};

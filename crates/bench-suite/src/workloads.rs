//! Benchmark workloads: the paper's Table II configurations plus the
//! reduced simulation sizes the functional simulator actually executes.
//!
//! GStencil/s is an *intensive* metric — counters scale linearly with
//! grid points and iterations — so each method is simulated exactly on a
//! reduced grid and the throughput model is evaluated at the paper's full
//! problem scale (tile counts only enter through device-fill utilization;
//! see [`crate::runner`]).

use stencil_core::{kernels, Grid1D, Grid2D, Grid3D, GridData, StencilKernel};

/// One benchmark configuration (a row of Table II).
#[derive(Debug, Clone)]
pub struct Workload {
    /// The stencil kernel.
    pub kernel: StencilKernel,
    /// Full problem dimensions (the paper's Table II sizes).
    pub full_dims: Vec<usize>,
    /// Full iteration count (Table II).
    pub full_iters: usize,
    /// Reduced dimensions for exact functional simulation.
    pub sim_dims: Vec<usize>,
    /// Reduced iterations (divisible by every fusion factor in play).
    pub sim_iters: usize,
}

impl Workload {
    /// Total point-updates at full scale (`T × Π N_i`, Eq. 18).
    pub fn full_updates(&self) -> u64 {
        self.full_dims.iter().product::<usize>() as u64 * self.full_iters as u64
    }

    /// Total grid points at full scale.
    pub fn full_points(&self) -> u64 {
        self.full_dims.iter().product::<usize>() as u64
    }

    /// Build the simulation input grid (smooth + pseudo-random mix so
    /// executors cannot pass by accident).
    pub fn sim_input(&self) -> GridData {
        match self.sim_dims.len() {
            1 => GridData::D1(Grid1D::from_fn(self.sim_dims[0], |i| {
                (i as f64 * 0.037).sin() * 2.0 + ((i * 2654435761) % 97) as f64 * 0.01
            })),
            2 => GridData::D2(Grid2D::from_fn(self.sim_dims[0], self.sim_dims[1], |r, c| {
                (r as f64 * 0.11).cos()
                    + (c as f64 * 0.07).sin() * 1.5
                    + ((r * 31 + c * 17) % 23) as f64 * 0.02
            })),
            3 => GridData::D3(Grid3D::from_fn(
                self.sim_dims[0],
                self.sim_dims[1],
                self.sim_dims[2],
                |z, y, x| (z as f64 * 0.5).sin() + (y as f64 * 0.13).cos() + (x % 7) as f64 * 0.05,
            )),
            d => panic!("unsupported dimensionality {d}"),
        }
    }
}

/// The eight Table II workloads in paper order.
pub fn table_ii() -> Vec<Workload> {
    let w1d = |kernel: StencilKernel| Workload {
        kernel,
        full_dims: vec![10_240_000],
        full_iters: 10_000,
        sim_dims: vec![32_768],
        sim_iters: 6,
    };
    let w2d = |kernel: StencilKernel| Workload {
        kernel,
        full_dims: vec![10_240, 10_240],
        full_iters: 10_240,
        sim_dims: vec![192, 192],
        sim_iters: 6,
    };
    let w3d = |kernel: StencilKernel| Workload {
        kernel,
        full_dims: vec![1_024, 1_024, 1_024],
        full_iters: 1_024,
        sim_dims: vec![12, 48, 48],
        sim_iters: 6,
    };
    vec![
        w1d(kernels::heat_1d()),
        w1d(kernels::p5_1d()),
        w2d(kernels::heat_2d()),
        w2d(kernels::box_2d9p()),
        w2d(kernels::star_2d13p()),
        w2d(kernels::box_2d49p()),
        w3d(kernels::heat_3d()),
        w3d(kernels::box_3d27p()),
    ]
}

/// Shrink every workload's simulation grid (for fast debug-mode tests;
/// the throughput model is intensive, so shapes are preserved).
pub fn reduced(mut wls: Vec<Workload>) -> Vec<Workload> {
    for w in &mut wls {
        w.sim_dims = match w.sim_dims.len() {
            1 => vec![2048],
            2 => vec![64, 64],
            _ => vec![6, 24, 24],
        };
    }
    wls
}

/// Look a workload up by kernel name.
pub fn by_name(name: &str) -> Option<Workload> {
    table_ii().into_iter().find(|w| w.kernel.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_workloads_in_paper_order() {
        let names: Vec<String> = table_ii().into_iter().map(|w| w.kernel.name).collect();
        assert_eq!(
            names,
            [
                "Heat-1D",
                "1D5P",
                "Heat-2D",
                "Box-2D9P",
                "Star-2D13P",
                "Box-2D49P",
                "Heat-3D",
                "Box-3D27P"
            ]
        );
    }

    #[test]
    fn full_updates_match_table_ii() {
        let w = by_name("Box-2D49P").unwrap();
        assert_eq!(w.full_updates(), 10_240 * 10_240 * 10_240);
        let w = by_name("Heat-3D").unwrap();
        assert_eq!(w.full_updates(), 1u64 << 40);
    }

    #[test]
    fn sim_iters_divisible_by_fusion_factors() {
        for w in table_ii() {
            assert_eq!(w.sim_iters % 3, 0, "{}", w.kernel.name);
            assert_eq!(w.sim_iters % 2, 0, "{}", w.kernel.name);
        }
    }

    #[test]
    fn sim_inputs_have_right_shape() {
        for w in table_ii() {
            let g = w.sim_input();
            assert_eq!(g.dims(), w.kernel.dims(), "{}", w.kernel.name);
            assert_eq!(g.len(), w.sim_dims.iter().product::<usize>());
        }
    }
}

//! Regeneration of every table and figure in the paper's evaluation
//! (§V): Fig. 8 (state-of-the-art comparison), Fig. 9 (performance
//! breakdown), Fig. 10 (shared-memory requests), Table III (compute
//! throughput / arithmetic intensity), plus the §III analytic models.
//!
//! Each `fig*`/`table*` function returns the printable report and the
//! raw numbers, so the binaries print and the tests assert.

use crate::report::{format_table, geomean, speedups_vs_slowest};
use crate::runner::{evaluate, MethodResult};
use crate::workloads::{self, Workload};
use baselines::all_baselines;
use lorastencil::{ExecConfig, LoRaStencil};
use stencil_core::symmetry::radially_symmetric_from_quadrant;
use stencil_core::{StencilKernel, WeightMatrix, Weights};
use tcu_sim::CostModel;

/// Build the "LoRAStencil-Best" variant of a kernel: the same shape and
/// radius with a rank-1 (separable) radially symmetric weight matrix —
/// the paper's upper-bound series ("the performance of LoRAStencil when
/// the original weight matrix is a rank-1 matrix").
pub fn rank1_variant(kernel: &StencilKernel) -> StencilKernel {
    let h = kernel.radius;
    let sep = |h: usize| -> WeightMatrix {
        // g ⊗ g with a symmetric, normalized g
        let g: Vec<f64> =
            (0..=2 * h).map(|i| 1.0 + (h as f64 - (i as f64 - h as f64).abs())).collect();
        let s: f64 = g.iter().sum();
        let g: Vec<f64> = g.iter().map(|x| x / s).collect();
        let q = h + 1;
        let quad: Vec<f64> = (0..q * q).map(|i| g[i / q] * g[i % q]).collect();
        radially_symmetric_from_quadrant(h, &quad)
    };
    let weights = match &kernel.weights {
        Weights::D1(w) => Weights::D1(w.clone()),
        Weights::D2(_) => Weights::D2(sep(h)),
        Weights::D3(ws) => {
            // keep single-weight planes (they need no matrix multiply);
            // replace multi-point planes with separable rank-1 matrices
            // of the same total weight
            let base = sep(h);
            Weights::D3(
                ws.iter()
                    .map(|w| {
                        if w.nonzero_points() <= 1 {
                            w.clone()
                        } else {
                            let total = w.sum();
                            WeightMatrix::from_fn(base.n(), |i, j| base.get(i, j) * total)
                        }
                    })
                    .collect(),
            )
        }
    };
    StencilKernel {
        name: format!("{}-rank1", kernel.name),
        shape: stencil_core::Shape::Box,
        radius: h,
        weights,
    }
}

/// The Fig. 8 result grid: per workload, one [`MethodResult`] per method
/// in paper order (cuDNN, AMOS, Brick, DRStencil, TCStencil, ConvStencil,
/// LoRAStencil, LoRAStencil-Best).
pub struct Fig8 {
    /// Workloads in Table II order.
    pub workloads: Vec<Workload>,
    /// `results[workload][method]`.
    pub results: Vec<Vec<MethodResult>>,
}

/// Run the full Fig. 8 comparison on the Table II workloads.
pub fn fig8(model: &CostModel) -> Fig8 {
    fig8_on(model, workloads::table_ii())
}

/// Run the Fig. 8 comparison on a custom workload set (the integration
/// tests use reduced simulation grids).
pub fn fig8_on(model: &CostModel, wls: Vec<Workload>) -> Fig8 {
    let results = wls
        .iter()
        .map(|w| {
            let mut row: Vec<MethodResult> =
                all_baselines().iter().map(|b| evaluate(b.as_ref(), w, model)).collect();
            row.push(evaluate(&LoRaStencil::new(), w, model));
            // LoRAStencil-Best: same problem scale, rank-1 weights
            let mut best_w = w.clone();
            best_w.kernel = rank1_variant(&w.kernel);
            let mut best = evaluate(&LoRaStencil::new(), &best_w, model);
            best.method = "LoRAStencil-Best";
            row.push(best);
            row
        })
        .collect();
    Fig8 { workloads: wls, results }
}

impl Fig8 {
    /// Printable report: GStencil/s and speedup-vs-slowest per kernel,
    /// plus LoRAStencil's average speedup over each method.
    pub fn render(&self) -> String {
        let methods: Vec<String> = self.results[0].iter().map(|r| r.method.to_string()).collect();
        let mut header = vec!["Kernel".to_string()];
        header.extend(methods.iter().cloned());
        let mut rows = Vec::new();
        for (w, res) in self.workloads.iter().zip(&self.results) {
            let mut row = vec![w.kernel.name.clone()];
            row.extend(res.iter().map(|r| format!("{:.1}", r.gstencil)));
            rows.push(row);
            let speeds: Vec<f64> = res.iter().map(|r| r.gstencil).collect();
            let su = speedups_vs_slowest(&speeds);
            let mut row = vec!["  (speedup)".to_string()];
            row.extend(su.iter().map(|s| format!("{s:.2}x")));
            rows.push(row);
        }
        let mut out = String::from("Fig. 8 — GStencil/s, all methods, Table II workloads\n\n");
        out.push_str(&format_table(&header, &rows));
        out.push_str("\nLoRAStencil average speedup over each method (geomean):\n");
        for (m, _) in methods.iter().enumerate().take(methods.len() - 2) {
            let ratios: Vec<f64> = self
                .results
                .iter()
                .map(|res| res[methods.len() - 2].gstencil / res[m].gstencil)
                .collect();
            out.push_str(&format!("  vs {:<12} {:.2}x\n", methods[m], geomean(&ratios)));
        }
        out
    }

    /// Machine-readable form of the comparison: one object per
    /// (workload, method) pair with the modeled throughput, measured
    /// counters, and verification error.
    pub fn to_json(&self) -> foundation::json::Json {
        use foundation::json::{Json, ToJson};
        Json::Arr(
            self.workloads
                .iter()
                .zip(&self.results)
                .flat_map(|(w, res)| {
                    res.iter().map(|r| {
                        Json::obj([
                            ("kernel", Json::Str(w.kernel.name.clone())),
                            ("method", Json::Str(r.method.to_string())),
                            ("gstencil_per_s", Json::Num(r.gstencil)),
                            ("max_error", Json::Num(r.max_error)),
                            ("counters", r.counters.to_json()),
                            ("estimate", r.estimate.to_json()),
                        ])
                    })
                })
                .collect(),
        )
    }

    /// LoRAStencil's speedup over a named method, per workload.
    pub fn lora_speedup_over(&self, method: &str) -> Vec<f64> {
        let mi = self.results[0].iter().position(|r| r.method == method).expect("method");
        let li =
            self.results[0].iter().position(|r| r.method == "LoRAStencil").expect("LoRAStencil");
        self.results.iter().map(|res| res[li].gstencil / res[mi].gstencil).collect()
    }
}

/// The Fig. 9 breakdown: Box-2D9P GStencil/s per optimization stage per
/// input size.
pub struct Fig9 {
    /// Input sizes (square grids of `size × size`).
    pub sizes: Vec<usize>,
    /// Stage names in cumulative order.
    pub stages: Vec<&'static str>,
    /// `gstencil[size][stage]`.
    pub gstencil: Vec<Vec<f64>>,
}

/// Run the Fig. 9 breakdown: each stage is simulated exactly once (the
/// per-point counters do not depend on the input size), then projected
/// onto every swept size through the device-fill/launch model.
pub fn fig9(model: &CostModel) -> Fig9 {
    let sizes = vec![512usize, 1024, 2048, 4096, 8192, 16384];
    let stages = ExecConfig::breakdown_stages();
    let base = workloads::by_name("Box-2D9P").unwrap();
    let measured: Vec<crate::runner::MethodResult> = stages
        .iter()
        .map(|(_, cfg)| evaluate(&LoRaStencil::with_config(*cfg), &base, model))
        .collect();
    let gstencil = sizes
        .iter()
        .map(|&n| measured.iter().map(|m| crate::runner::project(m, model, &[n, n], n)).collect())
        .collect();
    Fig9 { sizes, stages: stages.iter().map(|(n, _)| *n).collect(), gstencil }
}

impl Fig9 {
    /// Printable report.
    pub fn render(&self) -> String {
        let mut header = vec!["Input size".to_string()];
        header.extend(self.stages.iter().map(|s| s.to_string()));
        let rows: Vec<Vec<String>> = self
            .sizes
            .iter()
            .zip(&self.gstencil)
            .map(|(n, gs)| {
                let mut row = vec![format!("{n}x{n}")];
                row.extend(gs.iter().map(|g| format!("{g:.1}")));
                row
            })
            .collect();
        let mut out =
            String::from("Fig. 9 — performance breakdown (Box-2D9P), GStencil/s per stage\n\n");
        out.push_str(&format_table(&header, &rows));
        let last = self.gstencil.last().unwrap();
        out.push_str(&format!(
            "\nAt the largest size: TCU {:.2}x, BVS {:.2}x, AsyncCopy {:.2}x (paper: 2.14x, 4.00x, 1.297x)\n",
            last[1] / last[0],
            last[2] / last[1],
            last[3] / last[2],
        ));
        out
    }
}

/// The backend-comparison figure (DESIGN.md §14): modeled GStencil/s of
/// the LoRAStencil pipeline under each device backend — dense FP64
/// tensor cores, 2:4 sparse tensor cores, tuned host SIMD, and the
/// scalar CUDA-core ablation — on the sparse-friendly 2-D/3-D kernels.
pub struct FigBackends {
    /// Kernel names.
    pub kernels: Vec<String>,
    /// Backend labels in column order.
    pub backends: Vec<&'static str>,
    /// `gstencil[kernel][backend]`.
    pub gstencil: Vec<Vec<f64>>,
}

/// Run the four-way backend comparison (Heat-2D, Star-2D13P, Box-2D49P,
/// Heat-3D). 1-D kernels are omitted: their gather lowering always runs
/// on the dense tensor-core path, so all four columns would be two
/// distinct numbers.
pub fn fig_backends(model: &CostModel) -> FigBackends {
    use lorastencil::plan::DeviceBackend;
    let backends = [
        ("TcuF64", DeviceBackend::TcuF64),
        ("SparseTcu", DeviceBackend::SparseTcu),
        ("SimdCore", DeviceBackend::SimdCore),
        ("CudaCore", DeviceBackend::CudaCore),
    ];
    let names = ["Heat-2D", "Star-2D13P", "Box-2D49P", "Heat-3D"];
    let gstencil: Vec<Vec<f64>> = names
        .iter()
        .map(|name| {
            let w = workloads::by_name(name).unwrap();
            backends
                .iter()
                .map(|(_, b)| {
                    let cfg = ExecConfig { backend: *b, ..ExecConfig::full() };
                    evaluate(&LoRaStencil::with_config(cfg), &w, model).gstencil
                })
                .collect()
        })
        .collect();
    FigBackends {
        kernels: names.iter().map(|n| n.to_string()).collect(),
        backends: backends.iter().map(|(n, _)| *n).collect(),
        gstencil,
    }
}

impl FigBackends {
    /// Printable report.
    pub fn render(&self) -> String {
        let mut header = vec!["Kernel".to_string()];
        header.extend(self.backends.iter().map(|b| format!("{b} GStencil/s")));
        let rows: Vec<Vec<String>> = self
            .kernels
            .iter()
            .zip(&self.gstencil)
            .map(|(k, gs)| {
                let mut row = vec![k.clone()];
                row.extend(gs.iter().map(|g| format!("{g:.1}")));
                row
            })
            .collect();
        let mut out = String::from(
            "Backend comparison — LoRAStencil pipeline per device backend (DESIGN.md \u{00a7}14)\n\n",
        );
        out.push_str(&format_table(&header, &rows));
        let simd: Vec<f64> = self.column("SimdCore");
        let cuda: Vec<f64> = self.column("CudaCore");
        out.push_str(&format!(
            "\nGeomean SIMD over scalar CUDA cores: {:.2}x\n",
            geomean(&simd.iter().zip(&cuda).map(|(s, c)| s / c).collect::<Vec<_>>()),
        ));
        out
    }

    /// One backend's GStencil/s column by label.
    pub fn column(&self, backend: &str) -> Vec<f64> {
        let i = self.backends.iter().position(|b| *b == backend).expect("unknown backend label");
        self.gstencil.iter().map(|row| row[i]).collect()
    }
}

/// Fig. 10 data for one kernel: shared-memory requests of ConvStencil vs
/// LoRAStencil, normalized per million point-updates.
pub struct Fig10Row {
    /// Kernel name.
    pub kernel: String,
    /// ConvStencil (loads, stores, total).
    pub conv: (f64, f64, f64),
    /// LoRAStencil (loads, stores, total).
    pub lora: (f64, f64, f64),
}

/// Run the Fig. 10 comparison (Star-2D13P, Box-2D49P, Heat-3D,
/// Box-3D27P).
pub fn fig10(model: &CostModel) -> Vec<Fig10Row> {
    ["Star-2D13P", "Box-2D49P", "Heat-3D", "Box-3D27P"]
        .iter()
        .map(|name| {
            let w = workloads::by_name(name).unwrap();
            let conv = evaluate(&baselines::ConvStencil::new(), &w, model);
            let lora = evaluate(&LoRaStencil::new(), &w, model);
            let norm = |r: &MethodResult| {
                let per = 1.0e6 / r.counters.points_updated as f64;
                (
                    r.counters.shared_load_requests as f64 * per,
                    r.counters.shared_store_requests as f64 * per,
                    r.counters.shared_total_requests() as f64 * per,
                )
            };
            Fig10Row { kernel: name.to_string(), conv: norm(&conv), lora: norm(&lora) }
        })
        .collect()
}

/// Printable Fig. 10 report.
pub fn render_fig10(rows: &[Fig10Row]) -> String {
    let header: Vec<String> = [
        "Kernel",
        "Conv loads",
        "LoRA loads",
        "Conv stores",
        "LoRA stores",
        "Conv total",
        "LoRA total",
        "LoRA/Conv",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                format!("{:.0}", r.conv.0),
                format!("{:.0}", r.lora.0),
                format!("{:.0}", r.conv.1),
                format!("{:.0}", r.lora.1),
                format!("{:.0}", r.conv.2),
                format!("{:.0}", r.lora.2),
                format!("{:.1}%", 100.0 * r.lora.2 / r.conv.2),
            ]
        })
        .collect();
    let mut out = String::from(
        "Fig. 10 — shared-memory requests per million updates, ConvStencil vs LoRAStencil\n\n",
    );
    out.push_str(&format_table(&header, &body));
    let load_pct: Vec<f64> = rows.iter().map(|r| r.lora.0 / r.conv.0).collect();
    let store_pct: Vec<f64> = rows.iter().map(|r| r.lora.1 / r.conv.1).collect();
    let tot_pct: Vec<f64> = rows.iter().map(|r| r.lora.2 / r.conv.2).collect();
    out.push_str(&format!(
        "\nAverages: LoRA loads = {:.1}% of ConvStencil (paper: 19.1%), stores = {:.1}% (paper: 47.0%), total reduced by {:.1}% (paper: 76.6%)\n",
        100.0 * geomean(&load_pct),
        100.0 * geomean(&store_pct),
        100.0 * (1.0 - geomean(&tot_pct)),
    ));
    out
}

/// Table III data: compute throughput and arithmetic intensity.
pub struct Table3Row {
    /// Kernel name.
    pub kernel: String,
    /// Method name.
    pub method: &'static str,
    /// Compute (SM) throughput fraction.
    pub ct: f64,
    /// Arithmetic intensity, FLOP/byte.
    pub ai: f64,
}

/// Run the Table III comparison (Box-2D49P, Box-3D27P).
pub fn table3(model: &CostModel) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for name in ["Box-2D49P", "Box-3D27P"] {
        let w = workloads::by_name(name).unwrap();
        for result in [
            evaluate(&baselines::ConvStencil::new(), &w, model),
            evaluate(&LoRaStencil::new(), &w, model),
        ] {
            rows.push(Table3Row {
                kernel: name.to_string(),
                method: result.method,
                ct: result.estimate.compute_throughput(),
                ai: result.counters.arithmetic_intensity(),
            });
        }
    }
    rows
}

/// Printable Table III report.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let header: Vec<String> =
        ["Kernel", "Method", "CT %", "AI (FLOP/byte)"].iter().map(|s| s.to_string()).collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                r.method.to_string(),
                format!("{:.2}%", 100.0 * r.ct),
                format!("{:.2}", r.ai),
            ]
        })
        .collect();
    let mut out = String::from(
        "Table III — compute throughput and arithmetic intensity (paper: Conv 69.97%/3.59, LoRA 86.42%/7.41 on Box-2D49P; Conv 36.88%/1.65, LoRA 49.31%/2.53 on Box-3D27P)\n\n",
    );
    out.push_str(&format_table(&header, &body));
    out
}

/// The §III analytic models (Eq. 12–16) and the §IV-A fusion model, as a
/// printable report.
pub fn render_analysis() -> String {
    use lorastencil::analysis;
    use lorastencil::fusion;
    let header: Vec<String> =
        ["h", "ConvStencil/RDG loads (Eq.14)", "redundancy eliminated", "LoRA/Conv MMAs (Eq.16)"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let rows: Vec<Vec<String>> = (1..=8u64)
        .map(|h| {
            vec![
                h.to_string(),
                format!("{:.2}x", analysis::memory_ratio(h)),
                format!("{:.2}%", 100.0 * analysis::redundancy_eliminated(h)),
                format!("{:.2}x", analysis::mma_ratio(h)),
            ]
        })
        .collect();
    let mut out = String::from("Analytic models of §III (paper quotes h=3: 3.25x / 69.23% / 1.38x; h=4: 4.2x / 76.19%)\n\n");
    out.push_str(&format_table(&header, &rows));
    out.push_str(&format!(
        "\nKernel fusion (§IV-A): Box-2D9P 3x fusion cuts fragment waste by {:.2}% (paper: 61.54%)\n",
        100.0 * fusion::fusion_waste_reduction(1, 3)
    ));
    out.push_str("\nTable II configuration:\n");
    let header: Vec<String> =
        ["Kernel", "Points", "Problem size", "Iterations"].iter().map(|s| s.to_string()).collect();
    let rows: Vec<Vec<String>> = workloads::table_ii()
        .iter()
        .map(|w| {
            vec![
                w.kernel.name.clone(),
                w.kernel.points().to_string(),
                w.full_dims.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("x"),
                w.full_iters.to_string(),
            ]
        })
        .collect();
    out.push_str(&format_table(&header, &rows));
    out
}

/// One (kernel, target) cell of the portability table: how the plan's
/// mechanisms land on that target's hardware, measured off the emitted
/// listing and the emitter's declared capability matrix.
pub struct PortabilityRow {
    /// Kernel name.
    pub kernel: String,
    /// Codegen target (CLI spelling).
    pub target: &'static str,
    /// Listing length in lines.
    pub lines: usize,
    /// Whether the MMA chains run on native warp-level tensor cores.
    pub native_wmma: bool,
    /// Rendered `MmaChain` op count (identical across targets per
    /// kernel — the schedule is target-independent).
    pub chains: usize,
    /// Cross-lane shuffle call sites in the listing (`__shfl` /
    /// `subgroupShuffle`).
    pub shuffles: usize,
}

/// The multi-target portability table: one representative kernel per
/// dimensionality × every codegen target, rendered from the *same*
/// lowered schedule per kernel.
pub fn table_portability() -> Vec<PortabilityRow> {
    use lorastencil::codegen::{audit, Target};
    use lorastencil::schedule::Op;
    use lorastencil::Plan;
    use stencil_core::kernels;
    let mut rows = Vec::new();
    for kernel in [kernels::heat_1d(), kernels::box_2d49p(), kernels::heat_3d()] {
        for target in Target::ALL {
            let plan = Plan::new(&kernel, ExecConfig::full());
            let a = audit(&plan, target);
            rows.push(PortabilityRow {
                kernel: kernel.name.clone(),
                target: target.name(),
                lines: a.listing.lines().count(),
                native_wmma: a.caps.wmma,
                chains: a.ops.iter().filter(|o| matches!(o.op, Op::MmaChain { .. })).count(),
                shuffles: a.listing.matches("__shfl(").count()
                    + a.listing.matches("subgroupShuffle(").count(),
            });
        }
    }
    rows
}

/// Printable portability report.
pub fn render_portability(rows: &[PortabilityRow]) -> String {
    let header: Vec<String> = ["Kernel", "Target", "Lines", "WMMA", "Chains", "Shuffles"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                r.target.to_string(),
                r.lines.to_string(),
                if r.native_wmma { "native" } else { "emulated" }.to_string(),
                r.chains.to_string(),
                r.shuffles.to_string(),
            ]
        })
        .collect();
    let mut out =
        String::from("Portability — one schedule, every target (DESIGN.md \u{00a7}15)\n\n");
    out.push_str(&format_table(&header, &body));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::kernels;

    #[test]
    fn portability_table_covers_every_target_per_kernel() {
        let rows = table_portability();
        assert_eq!(rows.len(), 9, "3 kernels x 3 targets");
        for r in &rows {
            assert!(r.lines > 20, "{}/{}: implausibly short listing", r.kernel, r.target);
            assert_eq!(r.native_wmma, r.target != "wgsl", "{}/{}", r.kernel, r.target);
        }
        // the schedule is target-independent: chain counts agree per kernel
        for chunk in rows.chunks(3) {
            assert!(chunk.windows(2).all(|w| w[0].chains == w[1].chains), "{}", chunk[0].kernel);
        }
        let report = render_portability(&rows);
        assert!(report.contains("wgsl") && report.contains("emulated"));
    }

    #[test]
    fn rank1_variant_is_rank_one() {
        for k in kernels::all_kernels() {
            if k.dims() != 2 {
                continue;
            }
            let r1 = rank1_variant(&k);
            assert_eq!(r1.weights_2d().rank(1e-12), 1, "{}", k.name);
        }
    }

    #[test]
    fn rank1_variant_3d_planes_are_rank_one() {
        let r1 = rank1_variant(&kernels::box_3d27p());
        for p in r1.weights_3d() {
            assert!(p.rank(1e-12) <= 1);
        }
    }
}

//! FP16 study: both halves of the paper's §V-A TCStencil argument,
//! measured on the native `m16n16k16` half-precision model.
//!
//! 1. **Accuracy** — how fast binary16 stencil iteration drifts from the
//!    FP64 reference (the reason HPC insists on FP64 and the paper's
//!    FP64 focus matters);
//! 2. **Throughput** — the native FP16 modeled GStencil/s next to the
//!    ÷4-converted FP64-equivalent the comparison protocol uses.

use crate::report::format_table;
use crate::runner::{device_fill, LAUNCH_OVERHEAD_S};
use crate::workloads::{self, Workload};
use baselines::{TcStencilFp16, FP16_CONVERSION_FACTOR};
use stencil_core::{Problem, StencilExecutor};
use tcu_sim::CostModel;

/// One kernel's accuracy/throughput row.
pub struct Fp16Row {
    /// Kernel name.
    pub kernel: String,
    /// Max |FP16 − FP64 reference| after 1 iteration.
    pub err_1: f64,
    /// Max |FP16 − FP64 reference| after 6 iterations.
    pub err_6: f64,
    /// Native FP16 modeled GStencil/s at Table II scale.
    pub native_gstencil: f64,
    /// The §V-A FP64-equivalent (native ÷ 4).
    pub converted_gstencil: f64,
}

fn relative_scale(vals: &[f64]) -> f64 {
    vals.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300)
}

/// Run the study over the 2-D/3-D Table II workloads.
pub fn run(model: &CostModel) -> Vec<Fp16Row> {
    let exec = TcStencilFp16::new();
    workloads::table_ii()
        .into_iter()
        .filter(|w| w.kernel.dims() >= 2)
        .map(|w: Workload| {
            let input = w.sim_input();
            let scale = relative_scale(input.as_slice());
            let err_at = |iters: usize| {
                let p = Problem::new(w.kernel.clone(), input.clone(), iters);
                let out = exec.execute(&p).unwrap();
                let want = stencil_core::reference::run(&p.input, &p.kernel, iters);
                out.output.max_abs_diff(&want) / scale
            };
            let err_1 = err_at(1);
            let err_6 = err_at(6);

            let p = Problem::new(w.kernel.clone(), input, w.sim_iters);
            let out = exec.execute(&p).unwrap();
            let est = model.estimate(&out.counters, &out.block);
            let fill = device_fill(model, &out.block, w.full_points());
            let tpu = est.total / out.counters.points_updated.max(1) as f64 / fill;
            let total = tpu * w.full_updates() as f64 + LAUNCH_OVERHEAD_S * w.full_iters as f64;
            let native = w.full_updates() as f64 / total / 1e9;
            Fp16Row {
                kernel: w.kernel.name.clone(),
                err_1,
                err_6,
                native_gstencil: native,
                converted_gstencil: native / FP16_CONVERSION_FACTOR,
            }
        })
        .collect()
}

/// Printable report.
pub fn render(rows: &[Fp16Row]) -> String {
    let header: Vec<String> = [
        "Kernel",
        "rel err (1 iter)",
        "rel err (6 iters)",
        "FP16 native GStencil/s",
        "÷4 converted",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                format!("{:.2e}", r.err_1),
                format!("{:.2e}", r.err_6),
                format!("{:.1}", r.native_gstencil),
                format!("{:.1}", r.converted_gstencil),
            ]
        })
        .collect();
    let mut out = String::from(
        "FP16 study — native half-precision TCStencil: accuracy drift and throughput\n\n",
    );
    out.push_str(&format_table(&header, &body));
    out.push_str(
        "\nBinary16 stencils start ~1e-3 off and drift with iteration count — at the\n\
         paper's 10⁴-iteration scales the solution is unusable, which is why the\n\
         FP64 tensor-core path (and hence LoRAStencil vs ConvStencil) is the real\n\
         battleground. The ÷4 column is the §V-A comparison convention.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp16_errors_are_half_precision_sized_and_grow() {
        let rows = run(&CostModel::a100());
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.err_1 > 1e-8 && r.err_1 < 5e-2,
                "{}: single-step error {:.2e} not FP16-like",
                r.kernel,
                r.err_1
            );
            assert!(
                r.err_6 >= r.err_1 * 0.5,
                "{}: error should not shrink much with iterations",
                r.kernel
            );
            assert!(r.native_gstencil > r.converted_gstencil);
        }
    }
}

//! Regenerate the paper's Fig. 8: GStencil/s for every method on every
//! Table II kernel, plus LoRAStencil's average speedups.
//!
//! Pass `--json` to emit the machine-readable report instead of the
//! plain-text table.

fn main() {
    let model = tcu_sim::CostModel::a100();
    let fig = bench_suite::fig8(&model);
    if std::env::args().any(|a| a == "--json") {
        println!("{}", fig.to_json().dump());
    } else {
        println!("{}", fig.render());
    }
}

//! Regenerate the paper's Fig. 8: GStencil/s for every method on every
//! Table II kernel, plus LoRAStencil's average speedups.

fn main() {
    let model = tcu_sim::CostModel::a100();
    let fig = bench_suite::fig8(&model);
    println!("{}", fig.render());
}

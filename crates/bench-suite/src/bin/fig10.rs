//! Regenerate the paper's Fig. 10: shared-memory load/store/total
//! requests, ConvStencil vs LoRAStencil.

fn main() {
    let model = tcu_sim::CostModel::a100();
    let rows = bench_suite::fig10(&model);
    println!("{}", bench_suite::render_fig10(&rows));
}

//! Print the backend-comparison figure: LoRAStencil under dense TCU,
//! 2:4 sparse TCU, tuned host SIMD, and scalar CUDA cores.

fn main() {
    let model = tcu_sim::CostModel::a100();
    println!("{}", bench_suite::fig_backends(&model).render());
}

//! Print the paper's closed-form models (Eq. 12–16, §IV-A fusion) and
//! the Table II configuration.

fn main() {
    println!("{}", bench_suite::render_analysis());
}

//! Print the multi-target portability table: one lowered schedule per
//! kernel, rendered for CUDA, HIP and WGSL (DESIGN.md §15).

fn main() {
    println!("{}", bench_suite::render_portability(&bench_suite::table_portability()));
}

//! `bench_guard` — the CI bench-regression gate.
//!
//! Reads a bench report JSON written by the foundation harness with
//! `--baseline <old> --json <new>` (each entry then carries a
//! `speedup_vs_baseline` ratio of old-best over new-best) and fails if
//! any tracked benchmark regressed by more than the allowed fraction:
//! a speedup below `1 / (1 + max_regression)` means the new best time
//! is more than `max_regression` slower than the checked-in baseline.
//!
//! Entries without a numeric `speedup_vs_baseline` (benchmarks that are
//! new since the baseline, or runs without `--baseline`) are reported
//! but never fail the gate.
//!
//! ```text
//! bench_guard --json BENCH_pr5.json [--max-regression 0.10]
//! ```

use foundation::json::Json;

/// One parsed verdict: benchmark name, its speedup vs baseline (`None`
/// when the baseline has no entry for it), and whether it passes.
struct Verdict {
    name: String,
    speedup: Option<f64>,
    pass: bool,
}

/// Evaluate every entry of a bench report against the regression bound.
fn check(doc: &Json, max_regression: f64) -> Result<Vec<Verdict>, String> {
    let entries = doc.as_arr().ok_or("bench report top level is not an array")?;
    let floor = 1.0 / (1.0 + max_regression);
    let mut out = Vec::new();
    for e in entries {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or("bench entry is missing a string \"name\"")?
            .to_string();
        let speedup = e.get("speedup_vs_baseline").and_then(Json::as_f64);
        let pass = speedup.map(|s| s >= floor).unwrap_or(true);
        out.push(Verdict { name, speedup, pass });
    }
    Ok(out)
}

fn real_main() -> Result<(), String> {
    let mut json_path = String::new();
    let mut max_regression = 0.10f64;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => {
                json_path = argv.get(i + 1).cloned().ok_or("--json needs a path")?;
                i += 2;
            }
            "--max-regression" => {
                let v = argv.get(i + 1).ok_or("--max-regression needs a value")?;
                max_regression =
                    v.parse().map_err(|e| format!("bad --max-regression {v:?}: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if json_path.is_empty() {
        return Err("usage: bench_guard --json <report.json> [--max-regression 0.10]".into());
    }
    let text =
        std::fs::read_to_string(&json_path).map_err(|e| format!("cannot read {json_path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{json_path}: {e}"))?;
    let verdicts = check(&doc, max_regression).map_err(|e| format!("{json_path}: {e}"))?;
    if verdicts.is_empty() {
        return Err(format!("{json_path}: empty bench report"));
    }
    let mut failures = 0usize;
    for v in &verdicts {
        let status = if !v.pass {
            failures += 1;
            "REGRESSED"
        } else if v.speedup.is_none() {
            "no baseline"
        } else {
            "ok"
        };
        match v.speedup {
            Some(s) => println!("  {:<44} {:>6.3}x vs baseline  [{status}]", v.name, s),
            None => println!("  {:<44} {:>7}  [{status}]", v.name, "-"),
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} benchmark(s) regressed more than {:.0}% vs the checked-in baseline",
            max_regression * 100.0
        ));
    }
    println!(
        "bench guard: {} benchmarks within {:.0}% of baseline",
        verdicts.len(),
        max_regression * 100.0
    );
    Ok(())
}

fn main() {
    if let Err(e) = real_main() {
        eprintln!("bench_guard: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, Option<f64>)]) -> Json {
        let arr: Vec<Json> = entries
            .iter()
            .map(|(n, s)| {
                let mut fields = vec![("name", Json::Str(n.to_string()))];
                if let Some(s) = s {
                    fields.push(("speedup_vs_baseline", Json::Num(*s)));
                }
                Json::obj(fields)
            })
            .collect();
        Json::Arr(arr)
    }

    #[test]
    fn regressions_beyond_the_bound_fail() {
        let doc = report(&[("fast", Some(1.2)), ("slow", Some(0.85))]);
        let v = check(&doc, 0.10).unwrap();
        assert!(v[0].pass);
        assert!(!v[1].pass, "0.85 speedup = 17.6% slower, over the 10% bound");
    }

    #[test]
    fn small_regressions_within_the_bound_pass() {
        // 1/1.10 ≈ 0.909: a 9% slowdown is inside a 10% budget
        let doc = report(&[("jitter", Some(0.917))]);
        assert!(check(&doc, 0.10).unwrap()[0].pass);
    }

    #[test]
    fn entries_without_a_baseline_never_fail() {
        let doc = report(&[("brand-new", None)]);
        let v = check(&doc, 0.10).unwrap();
        assert!(v[0].pass);
        assert!(v[0].speedup.is_none());
    }

    #[test]
    fn malformed_reports_are_rejected() {
        assert!(check(&Json::Num(3.0), 0.1).is_err());
        let no_name = Json::Arr(vec![Json::obj(vec![("speedup_vs_baseline", Json::Num(1.0))])]);
        assert!(check(&no_name, 0.1).is_err());
    }
}

//! Native-FP16 TCStencil study: accuracy drift vs the FP64 reference and
//! modeled throughput, next to the paper's ÷4 conversion convention.

fn main() {
    let model = tcu_sim::CostModel::a100();
    let rows = bench_suite::fp16_study::run(&model);
    println!("{}", bench_suite::fp16_study::render(&rows));
}

//! Ablation studies of the design choices: decomposition strategy,
//! temporal-fusion depth, cost-model sensitivity, and autotuned vs
//! precedence-based planning.

fn main() {
    let model = tcu_sim::CostModel::a100();
    println!("{}", bench_suite::ablation::decomposition_ablation(&model));
    println!();
    println!("{}", bench_suite::ablation::fusion_sweep(&model));
    println!();
    println!("{}", bench_suite::ablation::sensitivity(&model));
    println!();
    println!("{}", bench_suite::ablation::autotune_report());
}

//! Regenerate the paper's Table III: compute throughput and arithmetic
//! intensity, ConvStencil vs LoRAStencil.

fn main() {
    let model = tcu_sim::CostModel::a100();
    let rows = bench_suite::table3(&model);
    println!("{}", bench_suite::render_table3(&rows));
}

//! Run the full evaluation: every figure and table of the paper in one
//! go (Fig. 8, Fig. 9, Fig. 10, Table III, analytic models), plus the
//! repo's own backend-comparison (DESIGN.md §14) and multi-target
//! portability (DESIGN.md §15) figures.

fn main() {
    let model = tcu_sim::CostModel::a100();
    println!("{}", bench_suite::render_analysis());
    println!();
    println!("{}", bench_suite::fig8(&model).render());
    println!();
    println!("{}", bench_suite::fig9(&model).render());
    println!();
    println!("{}", bench_suite::render_fig10(&bench_suite::fig10(&model)));
    println!();
    println!("{}", bench_suite::render_table3(&bench_suite::table3(&model)));
    println!();
    println!("{}", bench_suite::fig_backends(&model).render());
    println!();
    println!("{}", bench_suite::render_portability(&bench_suite::table_portability()));
}

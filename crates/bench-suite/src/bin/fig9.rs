//! Regenerate the paper's Fig. 9: the Box-2D9P performance breakdown
//! (RDG on CUDA cores → +TCU → +BVS → +AsyncCopy) across input sizes.

fn main() {
    let model = tcu_sim::CostModel::a100();
    let fig = bench_suite::fig9(&model);
    println!("{}", fig.render());
}

//! `loadgen` — drive the serve stack in-process and write
//! `BENCH_pr8.json`: warm vs cold-plan closed-loop throughput (the
//! `>= 5x` plan-cache gate) and open-loop p50/p99 latency.
//!
//! ```text
//! loadgen --json BENCH_pr8.json [--clients 4] [--hit-jobs 2000]
//!         [--cold-jobs 200] [--open-jobs 1000] [--rate-fraction 0.5]
//!         [--min-ratio 5.0] [--attempts 3] [--frame '<job json>']
//! ```
//!
//! Exits nonzero when the throughput gate fails after all attempts or
//! any arm sees an error response.

use bench_suite::loadgen::{render_json, render_text, run, LoadgenConfig};

fn real_main() -> Result<(), String> {
    let mut cfg = LoadgenConfig::default();
    let mut json_path = String::new();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let val = argv.get(i + 1).ok_or_else(|| format!("{key} needs a value"))?;
        let usize_val = || val.parse::<usize>().map_err(|e| format!("bad {key} {val:?}: {e}"));
        let f64_val = || val.parse::<f64>().map_err(|e| format!("bad {key} {val:?}: {e}"));
        match key {
            "--json" => json_path = val.clone(),
            "--clients" => cfg.clients = usize_val()?.max(1),
            "--hit-jobs" => cfg.hit_jobs = usize_val()?.max(2),
            "--cold-jobs" => cfg.cold_jobs = usize_val()?.max(1),
            "--open-jobs" => cfg.open_jobs = usize_val()?.max(1),
            "--rate-fraction" => cfg.open_rate_fraction = f64_val()?,
            "--min-ratio" => cfg.min_hit_ratio = f64_val()?,
            "--attempts" => cfg.attempts = usize_val()?.max(1),
            "--frame" => cfg.frame = val.clone(),
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 2;
    }
    if json_path.is_empty() {
        return Err("usage: loadgen --json <report.json> [--clients N] [--hit-jobs N] \
                    [--cold-jobs N] [--open-jobs N] [--rate-fraction F] [--min-ratio F] \
                    [--attempts N] [--frame <job json>]"
            .into());
    }
    let report = run(&cfg)?;
    print!("{}", render_text(&report));
    std::fs::write(&json_path, render_json(&report, &cfg))
        .map_err(|e| format!("cannot write {json_path}: {e}"))?;
    println!("wrote {json_path}");
    if !report.gate_passed {
        return Err(format!(
            "hit/cold throughput ratio {:.2}x is below the {:.1}x gate after {} attempt(s)",
            report.ratio, report.min_hit_ratio, report.attempts_used
        ));
    }
    Ok(())
}

fn main() {
    if let Err(e) = real_main() {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    }
}

//! The evaluation runner: execute a method on the reduced simulation
//! problem, verify its output against the naive reference, then evaluate
//! the throughput model at the paper's full problem scale.
//!
//! GStencil/s from the cost model is intensive (counters are linear in
//! tiles × applications), so the per-point rate measured on the
//! simulation grid carries over to the full grid; problem size enters
//! only through *device fill*: small grids cannot occupy every SM
//! (Fig. 9's left end), modeled as `min(1, resident-block demand /
//! capacity)`, plus a fixed kernel-launch overhead per application.

use crate::workloads::Workload;
use baselines::FP16_CONVERSION_FACTOR;
use stencil_core::{max_error_vs_reference, Problem, StencilExecutor};
use tcu_sim::{occupancy, BlockResources, CostModel, Estimate, PerfCounters};

/// Kernel-launch + tail overhead per grid application, seconds.
pub const LAUNCH_OVERHEAD_S: f64 = 4.0e-6;

/// Numerical tolerance for verification against the reference.
pub const VERIFY_TOL: f64 = 1e-9;

/// Result of evaluating one method on one workload.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name (paper's Fig. 8 labels).
    pub method: &'static str,
    /// Modeled throughput at full problem scale, GStencil/s.
    pub gstencil: f64,
    /// Cost-model breakdown (per simulated problem).
    pub estimate: Estimate,
    /// Counters from the exact simulation run.
    pub counters: PerfCounters,
    /// Block resources used for the occupancy model.
    pub block: BlockResources,
    /// Maximum absolute error vs the naive reference.
    pub max_error: f64,
}

/// Fraction of the device the full problem can keep busy.
pub fn device_fill(model: &CostModel, block: &BlockResources, full_points: u64) -> f64 {
    let occ = occupancy(&model.device, block);
    // each warp owns one 8×8 (64-point) tile; blocks are 8 warps
    let blocks_needed = full_points.div_ceil(64 * 8);
    let capacity = (model.device.num_sms * occ.blocks_per_sm.max(1)) as u64;
    (blocks_needed as f64 / capacity as f64).min(1.0)
}

/// Project a measured result onto a different full problem scale
/// (same kernel, same per-point behaviour — only device fill and launch
/// overhead change). Used by the Fig. 9 size sweep so each stage is
/// simulated once.
pub fn project(
    base: &MethodResult,
    model: &CostModel,
    full_dims: &[usize],
    full_iters: usize,
) -> f64 {
    let full_points: u64 = full_dims.iter().product::<usize>() as u64;
    let full_updates = full_points * full_iters as u64;
    let total = base.estimate.total;
    let fill = device_fill(model, &base.block, full_points);
    let sim_updates = base.counters.points_updated.max(1);
    let time_per_update = total / sim_updates as f64 / fill;
    let total_time = time_per_update * full_updates as f64 + LAUNCH_OVERHEAD_S * full_iters as f64;
    full_updates as f64 / total_time / 1e9
}

/// Evaluate `exec` on `workload`: exact simulation at reduced scale,
/// verification, then the throughput model at full scale.
pub fn evaluate(
    exec: &dyn StencilExecutor,
    workload: &Workload,
    model: &CostModel,
) -> MethodResult {
    let problem = Problem::new(workload.kernel.clone(), workload.sim_input(), workload.sim_iters);
    let outcome = {
        let _execute = foundation::obs::span(exec.name());
        exec.execute(&problem)
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", exec.name(), workload.kernel.name))
    };
    let max_error = {
        let _verify = foundation::obs::span("verify");
        let want =
            stencil_core::reference::run(&problem.input, &problem.kernel, problem.iterations);
        outcome.output.max_abs_diff(&want)
    };
    assert!(
        max_error < VERIFY_TOL,
        "{} produced wrong results on {}: err = {max_error}",
        exec.name(),
        workload.kernel.name
    );

    let estimate = model.estimate(&outcome.counters, &outcome.block);
    // TCStencil is FP16-native and cannot be ported to the FP64 fragment
    // shape (§V-A). The paper divides measured FP16 throughput by 4; our
    // counters are already FP64-sized on the memory side, so applying ÷4
    // to the whole estimate would double-count memory. We instead charge
    // the conversion to the tensor pipe, where the FP16 algorithm's
    // m16n16k16 fragment padding and layout conversions cost ~4× the
    // idealized m8n8k4 port the functional simulation runs.
    let total = if exec.name() == "TCStencil" {
        (estimate.t_tensor * FP16_CONVERSION_FACTOR)
            .max(estimate.t_cuda)
            .max(estimate.t_shared)
            .max(estimate.t_hbm)
            .max(estimate.t_l2)
            + estimate.t_shuffle
    } else {
        estimate.total
    };
    // per-point time from the simulation, adjusted for device fill and
    // launch overhead at full scale
    let fill = device_fill(model, &outcome.block, workload.full_points());
    let sim_updates = outcome.counters.points_updated.max(1);
    let time_per_update = total / sim_updates as f64 / fill;
    // applications at full scale (fusion already reflected in counters)
    let applies = workload.full_iters as f64;
    let total_time = time_per_update * workload.full_updates() as f64 + LAUNCH_OVERHEAD_S * applies;
    let gstencil = workload.full_updates() as f64 / total_time / 1e9;

    MethodResult {
        method: exec.name(),
        gstencil,
        estimate,
        counters: outcome.counters,
        block: outcome.block,
        max_error,
    }
}

/// Verify-only helper (used by the integration tests): the method's
/// maximum error on the workload's simulation problem.
pub fn verify(exec: &dyn StencilExecutor, workload: &Workload) -> f64 {
    let problem = Problem::new(workload.kernel.clone(), workload.sim_input(), workload.sim_iters);
    max_error_vs_reference(exec, &problem).expect("executor must support the workload")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use lorastencil::LoRaStencil;

    #[test]
    fn lora_evaluates_on_box_2d9p() {
        let w = workloads::by_name("Box-2D9P").unwrap();
        let r = evaluate(&LoRaStencil::new(), &w, &CostModel::a100());
        assert!(r.gstencil > 1.0, "implausibly low GStencil/s: {}", r.gstencil);
        assert!(r.max_error < VERIFY_TOL);
        assert!(r.counters.mma_ops > 0);
    }

    #[test]
    fn device_fill_saturates_for_large_problems() {
        let m = CostModel::a100();
        let b = BlockResources { shared_bytes: 16 * 1024, threads: 256, regs_per_thread: 64 };
        assert_eq!(device_fill(&m, &b, 10_240 * 10_240), 1.0);
        assert!(device_fill(&m, &b, 64 * 64) < 0.1);
    }

    #[test]
    fn tcstencil_gets_conversion_penalty() {
        use baselines::TcStencil;
        let w = workloads::by_name("Box-2D49P").unwrap();
        let m = CostModel::a100();
        let r = evaluate(&TcStencil::new(), &w, &m);
        // the converted throughput must fall below the raw FP64-port
        // estimate (the tensor pipe is charged 4×)
        let raw_g = r.counters.points_updated as f64 / r.estimate.total / 1e9;
        assert!(r.gstencil < raw_g, "conversion rule must apply");
    }
}

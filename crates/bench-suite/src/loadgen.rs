//! Load generator for the serve daemon — the `BENCH_pr8.json` producer.
//!
//! Drives an in-process [`ServerCore`] through the same
//! `handle_line` path the socket loop uses (no kernel sockets, so the
//! numbers isolate the service stack: protocol parse, plan cache,
//! execution, response rendering). Two instruments:
//!
//! - **Closed loop**: `clients` threads each hammer the next job as
//!   soon as the previous answer lands. Run once against a warm cache
//!   and once against a disabled one (`cache_capacity 0`, every job
//!   re-plans and re-tunes), the throughput ratio is the plan cache's
//!   value — the PR's `>= 5x` acceptance gate.
//! - **Open loop**: arrivals paced at a fixed rate independent of
//!   completions (arrival `i` is due at `t0 + i/rate`), latency counted
//!   from the *scheduled* arrival so queueing delay is charged to the
//!   server, not hidden by a slow client. Sorted samples give exact
//!   p50/p99, not histogram-bucket bounds.
//!
//! Throughput gates on shared CI hosts flake; [`run`] re-measures up to
//! `attempts` times and keeps the best ratio before failing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use stencil_cli::serve::{Action, ConnState, ServeConfig, ServerCore};

/// One loadgen campaign: workload, arm sizes, and the acceptance gate.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent closed-loop clients (and open-loop senders).
    pub clients: usize,
    /// Measured jobs against the warm cache.
    pub hit_jobs: usize,
    /// Measured jobs against the disabled cache (each re-plans, so far
    /// fewer are needed for a stable mean).
    pub cold_jobs: usize,
    /// Open-loop sample count.
    pub open_jobs: usize,
    /// Open-loop arrival rate as a fraction of the measured warm
    /// throughput (below 1.0 so the queue stays stable and p99 reflects
    /// service time, not unbounded queueing).
    pub open_rate_fraction: f64,
    /// The gate: warm jobs/sec must be at least this multiple of cold.
    pub min_hit_ratio: f64,
    /// Re-measure attempts before the gate fails.
    pub attempts: usize,
    /// The job frame every client submits, one line of serve protocol.
    pub frame: String,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 4,
            hit_jobs: 2000,
            cold_jobs: 200,
            open_jobs: 1000,
            open_rate_fraction: 0.5,
            min_hit_ratio: 5.0,
            attempts: 3,
            // small grid, heavy kernel: planning (decomposition,
            // lowering, on-miss tuning) dwarfs execution — the shape the
            // plan cache exists for
            frame: r#"{"kernel":"Box-2D49P","size":[8,8],"iters":1,"values":"none"}"#.into(),
        }
    }
}

/// One closed-loop arm's measurement.
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoop {
    pub jobs: usize,
    pub errors: usize,
    pub elapsed_ns: u64,
    pub jobs_per_sec: f64,
}

/// Exact quantile from sorted samples: the smallest value with at least
/// `ceil(q * n)` samples at or below it (nearest-rank definition).
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Run `jobs` requests across `clients` threads, each sending its next
/// request the moment the previous one answers. Returns wall-clock
/// throughput over the whole fleet.
pub fn closed_loop(core: &Arc<ServerCore>, frame: &str, clients: usize, jobs: usize) -> ClosedLoop {
    let clients = clients.max(1);
    let next = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let barrier = Barrier::new(clients + 1);
    let t0 = std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                let mut conn = ConnState::new();
                barrier.wait();
                while next.fetch_add(1, Ordering::Relaxed) < jobs {
                    match core.handle_line(&mut conn, frame) {
                        Action::Respond => {
                            if conn.resp.contains("\"ok\":false") {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Action::Shutdown => break,
                    }
                }
            });
        }
        barrier.wait();
        Instant::now()
    });
    let elapsed_ns = (t0.elapsed().as_nanos() as u64).max(1);
    ClosedLoop {
        jobs,
        errors: errors.load(Ordering::Relaxed),
        elapsed_ns,
        jobs_per_sec: jobs as f64 * 1e9 / elapsed_ns as f64,
    }
}

/// One open-loop arm: the offered rate and the sorted latency samples.
#[derive(Debug, Clone)]
pub struct OpenLoop {
    pub rate_per_sec: f64,
    pub jobs: usize,
    pub errors: usize,
    /// Scheduled-arrival-to-response latencies, ns, ascending.
    pub sorted_ns: Vec<u64>,
}

impl OpenLoop {
    pub fn p50_ns(&self) -> u64 {
        percentile(&self.sorted_ns, 0.50)
    }
    pub fn p99_ns(&self) -> u64 {
        percentile(&self.sorted_ns, 0.99)
    }
    pub fn max_ns(&self) -> u64 {
        self.sorted_ns.last().copied().unwrap_or(0)
    }
}

/// Offer `jobs` arrivals at `rate_per_sec` (arrival `i` due at
/// `i/rate`), spread over `clients` sender threads. A sender sleeps
/// until its arrival is due, then submits and measures from the *due*
/// time — a backed-up server pays for its queue in these numbers.
pub fn open_loop(
    core: &Arc<ServerCore>,
    frame: &str,
    clients: usize,
    jobs: usize,
    rate_per_sec: f64,
) -> OpenLoop {
    let clients = clients.max(1);
    let rate = rate_per_sec.max(1.0);
    let next = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let all = Mutex::new(Vec::with_capacity(jobs));
    let barrier = Barrier::new(clients + 1);
    let start = Mutex::new(Instant::now()); // overwritten at the barrier
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                let mut conn = ConnState::new();
                let mut mine = Vec::with_capacity(jobs / clients + 1);
                barrier.wait();
                let t0 = *start.lock().unwrap();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let due = t0 + Duration::from_nanos((i as f64 * 1e9 / rate) as u64);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    match core.handle_line(&mut conn, frame) {
                        Action::Respond => {
                            if conn.resp.contains("\"ok\":false") {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Action::Shutdown => break,
                    }
                    mine.push(due.elapsed().as_nanos() as u64);
                }
                all.lock().unwrap().extend(mine);
            });
        }
        *start.lock().unwrap() = Instant::now();
        barrier.wait();
    });
    let mut sorted_ns = all.into_inner().unwrap();
    sorted_ns.sort_unstable();
    OpenLoop { rate_per_sec: rate, jobs, errors: errors.load(Ordering::Relaxed), sorted_ns }
}

/// The full campaign's results, ready to render as `BENCH_pr8.json`.
#[derive(Debug, Clone)]
pub struct Report {
    pub hit: ClosedLoop,
    pub batched: ClosedLoop,
    pub cold: ClosedLoop,
    pub ratio: f64,
    pub open: OpenLoop,
    pub attempts_used: usize,
    pub gate_passed: bool,
    pub min_hit_ratio: f64,
}

fn warm_server(cfg: &LoadgenConfig, batch_max: usize) -> Arc<ServerCore> {
    let core = ServerCore::new(ServeConfig { batch_max, ..ServeConfig::default() });
    // warm-up: the first job plans and tunes, the rest grow the session
    // pool to fleet depth so the measured window never re-plans
    let mut conn = ConnState::new();
    for _ in 0..cfg.clients.max(1) + 1 {
        let _ = core.handle_line(&mut conn, &cfg.frame);
    }
    core
}

/// Measure both closed-loop arms (re-measuring up to `attempts` times
/// until the throughput gate holds), then the open-loop percentiles
/// against a warm server. Request-level errors in any arm fail the run
/// outright — a loadgen quietly benchmarking error responses would
/// report nonsense.
pub fn run(cfg: &LoadgenConfig) -> Result<Report, String> {
    let mut best: Option<(ClosedLoop, ClosedLoop, f64)> = None;
    let mut attempts_used = 0;
    for _ in 0..cfg.attempts.max(1) {
        attempts_used += 1;
        let warm = warm_server(cfg, 1);
        let hit = closed_loop(&warm, &cfg.frame, cfg.clients, cfg.hit_jobs);
        let cold_core =
            ServerCore::new(ServeConfig { cache_capacity: 0, ..ServeConfig::default() });
        let cold = closed_loop(&cold_core, &cfg.frame, cfg.clients, cfg.cold_jobs);
        if hit.errors + cold.errors > 0 {
            return Err(format!(
                "loadgen arms saw error responses (hit {}, cold {}) — frame: {}",
                hit.errors, cold.errors, cfg.frame
            ));
        }
        let ratio = hit.jobs_per_sec / cold.jobs_per_sec.max(f64::MIN_POSITIVE);
        if best.as_ref().map_or(true, |(_, _, r)| ratio > *r) {
            best = Some((hit, cold, ratio));
        }
        if ratio >= cfg.min_hit_ratio {
            break;
        }
    }
    let (hit, cold, ratio) = best.expect("at least one attempt ran");

    // batched arm: same warm workload through the dispatcher, to keep a
    // number on the fused-dispatch path (informational, not gated)
    let batched_core = warm_server(cfg, 8);
    let batched = closed_loop(&batched_core, &cfg.frame, cfg.clients, cfg.hit_jobs / 2);
    batched_core.begin_shutdown();
    batched_core.join_dispatcher();

    let open_core = warm_server(cfg, 1);
    let rate = (hit.jobs_per_sec * cfg.open_rate_fraction).max(1.0);
    let open = open_loop(&open_core, &cfg.frame, cfg.clients, cfg.open_jobs, rate);
    if batched.errors + open.errors > 0 {
        return Err(format!(
            "loadgen arms saw error responses (batched {}, open {}) — frame: {}",
            batched.errors, open.errors, cfg.frame
        ));
    }
    Ok(Report {
        hit,
        batched,
        cold,
        ratio,
        open,
        attempts_used,
        gate_passed: ratio >= cfg.min_hit_ratio,
        min_hit_ratio: cfg.min_hit_ratio,
    })
}

/// `BENCH_pr8.json`: the bench-guard array shape (each entry carries a
/// `name`; none carry `speedup_vs_baseline`, so the guard treats them
/// as informational and the loadgen's own gate is the authority).
pub fn render_json(r: &Report, cfg: &LoadgenConfig) -> String {
    let entry = |name: &str, unit: &str, value: f64| {
        format!(
            "  {{\"name\": \"{name}\", \"unit\": \"{unit}\", \"value\": {value}, \
             \"clients\": {}, \"frame\": {:?}}}",
            cfg.clients, cfg.frame
        )
    };
    let rows = [
        entry("serve/hit-throughput", "jobs_per_sec", r.hit.jobs_per_sec),
        entry("serve/hit-batched-throughput", "jobs_per_sec", r.batched.jobs_per_sec),
        entry("serve/cold-plan-throughput", "jobs_per_sec", r.cold.jobs_per_sec),
        entry("serve/hit-over-cold-ratio", "ratio", r.ratio),
        entry("serve/open-loop-rate", "jobs_per_sec", r.open.rate_per_sec),
        entry("serve/open-loop-p50", "ns", r.open.p50_ns() as f64),
        entry("serve/open-loop-p99", "ns", r.open.p99_ns() as f64),
        entry("serve/open-loop-max", "ns", r.open.max_ns() as f64),
    ];
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Human summary for the CI log.
pub fn render_text(r: &Report) -> String {
    format!(
        "loadgen: warm {:.0} jobs/s ({} jobs), batched {:.0} jobs/s, \
         cold-plan {:.0} jobs/s ({} jobs)\n\
         hit/cold ratio {:.2}x (gate >= {:.1}x, {} attempt(s)) — {}\n\
         open loop at {:.0} jobs/s: p50 {} ns, p99 {} ns, max {} ns over {} jobs\n",
        r.hit.jobs_per_sec,
        r.hit.jobs,
        r.batched.jobs_per_sec,
        r.cold.jobs_per_sec,
        r.cold.jobs,
        r.ratio,
        r.min_hit_ratio,
        r.attempts_used,
        if r.gate_passed { "PASS" } else { "FAIL" },
        r.open.rate_per_sec,
        r.open.p50_ns(),
        r.open.p99_ns(),
        r.open.max_ns(),
        r.open.jobs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::json::Json;

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&s, 0.50), 50);
        assert_eq!(percentile(&s, 0.99), 100);
        assert_eq!(percentile(&s, 0.01), 10);
        assert_eq!(percentile(&s, 1.0), 100);
        assert_eq!(percentile(&[42], 0.99), 42);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn tiny_campaign_reports_sane_numbers_and_valid_json() {
        // minimal sizes, gate at 0 so timing noise cannot flake the test
        let cfg = LoadgenConfig {
            clients: 2,
            hit_jobs: 8,
            cold_jobs: 2,
            open_jobs: 6,
            attempts: 1,
            min_hit_ratio: 0.0,
            ..LoadgenConfig::default()
        };
        let r = run(&cfg).unwrap();
        assert!(r.gate_passed);
        assert_eq!(r.hit.jobs, 8);
        assert_eq!(r.cold.jobs, 2);
        assert_eq!(r.open.sorted_ns.len(), 6);
        assert!(r.hit.jobs_per_sec > 0.0 && r.cold.jobs_per_sec > 0.0);
        assert!(r.open.p50_ns() <= r.open.p99_ns() && r.open.p99_ns() <= r.open.max_ns());

        let text = render_json(&r, &cfg);
        let doc = Json::parse(&text).unwrap();
        let arr = doc.as_arr().unwrap();
        assert_eq!(arr.len(), 8);
        for e in arr {
            assert!(e.get("name").and_then(Json::as_str).is_some());
            assert!(e.get("value").and_then(Json::as_f64).is_some());
            // guard-neutral: the regression guard must never gate these
            assert!(e.get("speedup_vs_baseline").is_none());
        }
        assert!(render_text(&r).contains("hit/cold ratio"));
    }

    #[test]
    fn error_frames_fail_the_campaign_loudly() {
        let cfg = LoadgenConfig {
            clients: 1,
            hit_jobs: 2,
            cold_jobs: 1,
            open_jobs: 1,
            attempts: 1,
            min_hit_ratio: 0.0,
            frame: r#"{"kernel":"no-such-kernel","size":[8,8]}"#.into(),
            ..LoadgenConfig::default()
        };
        let e = run(&cfg).unwrap_err();
        assert!(e.contains("error responses"), "{e}");
    }
}

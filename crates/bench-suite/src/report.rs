//! Report formatting: aligned plain-text tables, speedups relative to
//! the slowest method (the paper's Fig. 8 convention), geometric means,
//! and a machine-readable JSON form of the same tables.

use foundation::json::Json;

/// Format a table with a header row and aligned columns.
pub fn format_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>w$}", w = w));
        }
        line
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// The same table as JSON: an array of row objects keyed by the header
/// cells. Numeric-looking cells are emitted as numbers so downstream
/// tooling can plot them without re-parsing strings.
pub fn table_to_json(header: &[String], rows: &[Vec<String>]) -> Json {
    let cell = |s: &str| -> Json {
        match s.trim().parse::<f64>() {
            Ok(v) => Json::Num(v),
            Err(_) => Json::Str(s.trim().to_string()),
        }
    };
    Json::Arr(
        rows.iter()
            .map(|row| {
                assert_eq!(row.len(), header.len(), "ragged table row");
                Json::Obj(header.iter().zip(row).map(|(h, c)| (h.clone(), cell(c))).collect())
            })
            .collect(),
    )
}

/// Speedups of each value relative to the smallest (the paper's Fig. 8
/// left-axis convention: "speedup … relative to the lowest-performing
/// method in that kernel").
pub fn speedups_vs_slowest(values: &[f64]) -> Vec<f64> {
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    values.iter().map(|v| v / min).collect()
}

/// Ratio of the last value (LoRAStencil by convention) to each other
/// value — "LoRAStencil is N× faster than …".
pub fn lora_speedup_over(values: &[f64], lora: f64) -> Vec<f64> {
    values.iter().map(|v| lora / v).collect()
}

/// Geometric mean.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with("bb"));
        assert!(lines[2].starts_with("  1"));
    }

    #[test]
    fn speedups_normalize_to_slowest() {
        let s = speedups_vs_slowest(&[2.0, 4.0, 1.0]);
        assert_eq!(s, vec![2.0, 4.0, 1.0]);
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        format_table(&["a".into()], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn json_table_types_cells() {
        let j = table_to_json(
            &["Kernel".into(), "GStencil/s".into()],
            &[vec!["Heat-2D".into(), "101.5".into()]],
        );
        assert_eq!(j.dump(), r#"[{"Kernel":"Heat-2D","GStencil/s":101.5}]"#);
    }
}

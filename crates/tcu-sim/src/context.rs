//! The simulation context: a warp-granular execution handle that performs
//! tensor-core and data-movement operations while charging them to a
//! [`PerfCounters`] set.
//!
//! A context is cheap and tile-local: parallel executors create one per
//! tile/thread-block and [`PerfCounters::merge`] the results afterwards,
//! mirroring how per-block hardware counters aggregate.

use crate::counters::PerfCounters;
use crate::fragment::{FragA, FragASp, FragAcc, FragB, MMA_K, MMA_M, MMA_N};
use crate::trace::{Trace, TraceEvent};

/// Execution context for one simulated warp (or thread block).
#[derive(Debug, Default, Clone)]
pub struct SimContext {
    /// Counters charged by every operation issued through this context.
    pub counters: PerfCounters,
    /// Shared-memory bytes this block has allocated (for occupancy).
    pub shared_bytes_per_block: u32,
    /// Threads per block (for occupancy).
    pub threads_per_block: u32,
    /// Registers per thread (for occupancy).
    pub regs_per_thread: u32,
    /// Optional instruction trace (see [`crate::trace`]).
    pub(crate) trace: Option<Trace>,
}

impl SimContext {
    /// A fresh context with zeroed counters and default block shape
    /// (256 threads, 64 registers — typical for the paper's kernels).
    pub fn new() -> Self {
        SimContext {
            counters: PerfCounters::new(),
            shared_bytes_per_block: 0,
            threads_per_block: 256,
            regs_per_thread: 64,
            trace: None,
        }
    }

    /// Issue one `mma.m8n8k4.f64`: `D = A × B + C`.
    ///
    /// This is the only way the simulator multiplies fragments, so
    /// `counters.mma_ops` is an exact instruction count.
    pub fn mma(&mut self, a: &FragA, b: &FragB, c: &FragAcc) -> FragAcc {
        let mut d = *c;
        self.mma_into(a, b, &mut d);
        d
    }

    /// In-place `mma.m8n8k4.f64`: `C = A × B + C`. The hot-loop form of
    /// [`SimContext::mma`] — the chained RDG accumulators stay in place
    /// instead of being zeroed and copied per instruction. The per-element
    /// FMA order matches real accumulator semantics (`c + a0·b0 + a1·b1 +
    /// a2·b2 + a3·b3`), so results are bit-identical to [`SimContext::mma`].
    #[inline]
    pub fn mma_into(&mut self, a: &FragA, b: &FragB, c: &mut FragAcc) {
        self.counters.mma_ops += 1;
        self.record(TraceEvent::Mma);
        mma_lanes(&a.lanes, &b.lanes, c);
    }

    /// Issue a back-to-back chain of `mma.m8n8k4.f64` instructions that
    /// share one accumulator: `C += Σ_i A_i × B_i`. The chain keeps the
    /// accumulator lanes register-resident across all `a.len()`
    /// instructions instead of writing them back per call — the batched
    /// form the tuned schedules select via `mma_batch`.
    ///
    /// Counter and trace accounting is identical to issuing
    /// [`SimContext::mma_into`] once per pair, and the per-element FMA
    /// order is preserved exactly (element `i`'s full k-loop completes
    /// before element `i + 1` touches the lane), so results are
    /// bit-identical to the sequential form.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` differ in length.
    #[inline]
    pub fn mma_chain_into(&mut self, a: &[&FragA], b: &[&FragB], c: &mut FragAcc) {
        assert_eq!(a.len(), b.len(), "mma_chain_into needs matched A/B fragment chains");
        self.counters.mma_ops += a.len() as u64;
        for _ in 0..a.len() {
            self.record(TraceEvent::Mma);
        }
        // Monomorphize the chain length: each arm fully unrolls its
        // element loop, so the accumulator lanes stay register-resident
        // across the whole chain — the host-side speedup `mma_batch`
        // models. Chains are capped at 16 (`MAX_MMA_BATCH` upstream);
        // anything longer falls back to the dynamic loop.
        match a.len() {
            1 => chain_lanes::<1>(a, b, c),
            2 => chain_lanes::<2>(a, b, c),
            3 => chain_lanes::<3>(a, b, c),
            4 => chain_lanes::<4>(a, b, c),
            5 => chain_lanes::<5>(a, b, c),
            6 => chain_lanes::<6>(a, b, c),
            7 => chain_lanes::<7>(a, b, c),
            8 => chain_lanes::<8>(a, b, c),
            9 => chain_lanes::<9>(a, b, c),
            10 => chain_lanes::<10>(a, b, c),
            _ => {
                for r in 0..MMA_M {
                    for half in 0..MMA_N / 2 {
                        let lane = 4 * r + half;
                        let mut e = c.r0[lane];
                        let mut o = c.r1[lane];
                        for (ai, bi) in a.iter().zip(b.iter()) {
                            let (al, bl) = (&ai.lanes, &bi.lanes);
                            for k in 0..MMA_K {
                                e += al[4 * r + k] * bl[8 * half + k];
                                o += al[4 * r + k] * bl[8 * half + MMA_K + k];
                            }
                        }
                        c.r0[lane] = e;
                        c.r1[lane] = o;
                    }
                }
            }
        }
    }

    /// In-place structured-sparse `mma.sp.m8n8k4.f64`: `C = A × B + C`
    /// with a 2:4-compressed A operand.
    ///
    /// Per accumulator element the surviving products are added in
    /// increasing-K order — the same order the dense k-loop visits them —
    /// and the pruned products are signed zeros, so for `+0.0`-seeded
    /// accumulations the result is **bit-identical** to
    /// [`SimContext::mma_into`] on the decompressed fragment: under
    /// round-to-nearest a sum seeded at `+0.0` can never become `-0.0`,
    /// and `x + (±0.0) == x` for every such `x`.
    ///
    /// Charges one `mma_sp_ops`; metadata-register traffic is charged
    /// separately via [`SimContext::metadata_loads`] so schedules can
    /// amortize one metadata load across many column blocks.
    #[inline]
    pub fn mma_sp_into(&mut self, a: &FragASp, b: &FragB, c: &mut FragAcc) {
        self.counters.mma_sp_ops += 1;
        self.record(TraceEvent::MmaSp);
        let bl = &b.lanes;
        for r in 0..MMA_M {
            for half in 0..MMA_N / 2 {
                let lane = 4 * r + half;
                let mut e = c.r0[lane];
                let mut o = c.r1[lane];
                for s in 0..2 {
                    let v = a.vals[r][s];
                    if v != 0.0 {
                        let k = usize::from(a.idx[r][s]);
                        e += v * bl[8 * half + k];
                        o += v * bl[8 * half + MMA_K + k];
                    }
                }
                c.r0[lane] = e;
                c.r1[lane] = o;
            }
        }
    }

    /// Charge `n` sparsity-metadata register loads (one per compressed A
    /// fragment whose 2-bit indices are brought into the metadata
    /// registers; reusable across the column blocks that share the
    /// fragment).
    pub fn metadata_loads(&mut self, n: u64) {
        self.counters.metadata_loads += n;
        self.record(TraceEvent::MetaLoad(n));
    }

    /// Extract accumulator columns into an A fragment, charging the
    /// shuffle instructions the chosen column set costs on real hardware
    /// (0 for the butterfly sets, 2 for the natural contiguous split —
    /// see [`FragAcc::extract_a`]).
    pub fn acc_to_a(&mut self, acc: &FragAcc, cols: [usize; MMA_K]) -> FragA {
        let (frag, shuffles) = acc.extract_a(cols);
        self.counters.shuffle_ops += shuffles;
        self.record(TraceEvent::AccExtract { cols, shuffles });
        frag
    }

    /// Charge `n` scalar FP64 operations executed on CUDA cores.
    pub fn cuda_flops(&mut self, n: u64) {
        self.counters.cuda_flops += n;
        self.record(TraceEvent::CudaFlops(n));
    }

    /// Charge `n` explicit warp shuffle instructions (used by baselines
    /// that move data between lanes outside fragment extraction).
    pub fn shuffles(&mut self, n: u64) {
        self.counters.shuffle_ops += n;
        self.record(TraceEvent::Shuffles(n));
    }

    /// Record one stencil-point update completion.
    pub fn points(&mut self, n: u64) {
        self.counters.points_updated += n;
    }

    /// Declare the block shape used by this context's kernel so the cost
    /// model can compute occupancy.
    pub fn set_block_shape(&mut self, shared_bytes: u32, threads: u32, regs_per_thread: u32) {
        self.shared_bytes_per_block = shared_bytes;
        self.threads_per_block = threads;
        self.regs_per_thread = regs_per_thread;
    }
}

/// The m8n8k4 FMA body shared by [`SimContext::mma_into`] and the chain
/// form. Lane layout (see `fragment`): A row `r` is lanes `4r..4r+4`; B
/// column `n` is lanes `4n..4n+4`; acc `(r, n)` is lane `4r + n/2`,
/// register `n%2` — register 0 holds the even columns, register 1 the
/// odd ones. Every index is a compile-time-bounded expression into the
/// 32-lane arrays, so the unrolled loop carries no bounds checks.
#[inline(always)]
fn mma_lanes(al: &[f64; crate::WARP_LANES], bl: &[f64; crate::WARP_LANES], c: &mut FragAcc) {
    for r in 0..MMA_M {
        for half in 0..MMA_N / 2 {
            let lane = 4 * r + half;
            let mut e = c.r0[lane];
            let mut o = c.r1[lane];
            for k in 0..MMA_K {
                e += al[4 * r + k] * bl[8 * half + k];
                o += al[4 * r + k] * bl[8 * half + MMA_K + k];
            }
            c.r0[lane] = e;
            c.r1[lane] = o;
        }
    }
}

/// Length-monomorphized chain body: `N` is a compile-time constant, so
/// the element loop unrolls and the `e`/`o` lane accumulators live in
/// registers across all `N` FMA groups. FP order per lane is identical
/// to issuing [`mma_lanes`] `N` times (each element's k-loop completes
/// before the next element touches the lane).
#[inline(always)]
fn chain_lanes<const N: usize>(a: &[&FragA], b: &[&FragB], c: &mut FragAcc) {
    let a: &[&FragA; N] = a.try_into().expect("dispatched on len");
    let b: &[&FragB; N] = b.try_into().expect("dispatched on len");
    for r in 0..MMA_M {
        for half in 0..MMA_N / 2 {
            let lane = 4 * r + half;
            let mut e = c.r0[lane];
            let mut o = c.r1[lane];
            for i in 0..N {
                let (al, bl) = (&a[i].lanes, &b[i].lanes);
                for k in 0..MMA_K {
                    e += al[4 * r + k] * bl[8 * half + k];
                    o += al[4 * r + k] * bl[8 * half + MMA_K + k];
                }
            }
            c.r0[lane] = e;
            c.r1[lane] = o;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_a(mut f: impl FnMut(usize, usize) -> f64) -> FragA {
        let mut m = [[0.0; MMA_K]; MMA_M];
        for (r, row) in m.iter_mut().enumerate() {
            for (k, v) in row.iter_mut().enumerate() {
                *v = f(r, k);
            }
        }
        FragA::from_matrix(&m)
    }

    fn mat_b(mut f: impl FnMut(usize, usize) -> f64) -> FragB {
        let mut m = [[0.0; MMA_N]; MMA_K];
        for (k, row) in m.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = f(k, c);
            }
        }
        FragB::from_matrix(&m)
    }

    #[test]
    fn mma_identity_times_b_is_b_rows() {
        let mut ctx = SimContext::new();
        // A = [I4; 0] so the first 4 rows of D equal B.
        let a = mat_a(|r, k| if r == k { 1.0 } else { 0.0 });
        let b = mat_b(|k, c| (k * 10 + c) as f64);
        let d = ctx.mma(&a, &b, &FragAcc::zero());
        for k in 0..MMA_K {
            for c in 0..MMA_N {
                assert_eq!(d.get(k, c), b.get(k, c));
            }
        }
        for r in MMA_K..MMA_M {
            for c in 0..MMA_N {
                assert_eq!(d.get(r, c), 0.0);
            }
        }
        assert_eq!(ctx.counters.mma_ops, 1);
    }

    #[test]
    fn mma_accumulates_into_c() {
        let mut ctx = SimContext::new();
        let a = mat_a(|_, _| 1.0);
        let b = mat_b(|_, _| 1.0);
        let mut cmat = [[0.0; MMA_N]; MMA_M];
        cmat[3][5] = 7.0;
        let c = FragAcc::from_matrix(&cmat);
        let d = ctx.mma(&a, &b, &c);
        assert_eq!(d.get(3, 5), 4.0 + 7.0);
        assert_eq!(d.get(0, 0), 4.0);
    }

    #[test]
    fn mma_matches_dense_reference() {
        let mut ctx = SimContext::new();
        let a = mat_a(|r, k| (r as f64 + 1.0) * 0.5 + k as f64);
        let b = mat_b(|k, c| (k as f64 - 1.5) * (c as f64 + 0.25));
        let d = ctx.mma(&a, &b, &FragAcc::zero());
        for r in 0..MMA_M {
            for c in 0..MMA_N {
                let mut want = 0.0;
                for k in 0..MMA_K {
                    want += a.get(r, k) * b.get(k, c);
                }
                assert!((d.get(r, c) - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mma_chain_is_bit_identical_to_sequential_mma_into() {
        let mut seed = 0x5DEECE66Du64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for chain_len in [1usize, 2, 3, 4, 7] {
            let a_frags: Vec<FragA> = (0..chain_len).map(|_| mat_a(|_, _| next())).collect();
            let b_frags: Vec<FragB> = (0..chain_len).map(|_| mat_b(|_, _| next())).collect();

            let mut ctx_seq = SimContext::new();
            let mut acc_seq = FragAcc::from_matrix(&[[0.125; MMA_N]; MMA_M]);
            for (a, b) in a_frags.iter().zip(b_frags.iter()) {
                ctx_seq.mma_into(a, b, &mut acc_seq);
            }

            let mut ctx_chain = SimContext::new();
            let mut acc_chain = FragAcc::from_matrix(&[[0.125; MMA_N]; MMA_M]);
            let a_refs: Vec<&FragA> = a_frags.iter().collect();
            let b_refs: Vec<&FragB> = b_frags.iter().collect();
            ctx_chain.mma_chain_into(&a_refs, &b_refs, &mut acc_chain);

            for r in 0..MMA_M {
                for c in 0..MMA_N {
                    assert_eq!(
                        acc_seq.get(r, c).to_bits(),
                        acc_chain.get(r, c).to_bits(),
                        "chain_len={chain_len} ({r},{c})"
                    );
                }
            }
            assert_eq!(ctx_chain.counters.mma_ops, chain_len as u64);
            assert_eq!(ctx_chain.counters.mma_ops, ctx_seq.counters.mma_ops);
        }
    }

    #[test]
    fn mma_chain_traces_one_event_per_element() {
        let mut ctx = SimContext::new();
        ctx.enable_trace();
        let a = mat_a(|r, k| (r + k) as f64);
        let b = mat_b(|k, c| (k * c) as f64);
        ctx.mma_chain_into(&[&a, &a, &a], &[&b, &b, &b], &mut FragAcc::zero());
        let t = ctx.take_trace().unwrap();
        assert_eq!(t.count(|e| matches!(e, TraceEvent::Mma)), 3);
    }

    #[test]
    fn sparse_mma_is_bit_identical_to_dense_on_2_4_fragments() {
        use crate::fragment::FragASp;
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        // banded-style A: rows keep two adjacent K entries (a 2:4 pattern)
        let mut m = [[0.0; MMA_K]; MMA_M];
        for (r, row) in m.iter_mut().enumerate() {
            let k0 = r % 3;
            row[k0] = next();
            row[k0 + 1] = next();
        }
        let dense = FragA::from_matrix(&m);
        let sp = FragASp::compress(&dense).expect("two adjacent nonzeros per row is 2:4");
        let b = mat_b(|_, _| next());
        let seedm = [[0.25; MMA_N]; MMA_M];

        let mut ctx_d = SimContext::new();
        let mut acc_d = FragAcc::from_matrix(&seedm);
        ctx_d.mma_into(&dense, &b, &mut acc_d);

        let mut ctx_s = SimContext::new();
        let mut acc_s = FragAcc::from_matrix(&seedm);
        ctx_s.mma_sp_into(&sp, &b, &mut acc_s);

        for r in 0..MMA_M {
            for c in 0..MMA_N {
                assert_eq!(acc_d.get(r, c).to_bits(), acc_s.get(r, c).to_bits(), "({r},{c})");
            }
        }
        assert_eq!(ctx_s.counters.mma_sp_ops, 1);
        assert_eq!(ctx_s.counters.mma_ops, 0);
        ctx_s.metadata_loads(3);
        assert_eq!(ctx_s.counters.metadata_loads, 3);
    }

    #[test]
    fn acc_to_a_charges_shuffles_only_for_nonbutterfly() {
        let mut ctx = SimContext::new();
        let acc = FragAcc::from_matrix(&[[1.0; MMA_N]; MMA_M]);
        ctx.acc_to_a(&acc, FragAcc::BUTTERFLY_COLS[0]);
        ctx.acc_to_a(&acc, FragAcc::BUTTERFLY_COLS[1]);
        assert_eq!(ctx.counters.shuffle_ops, 0);
        ctx.acc_to_a(&acc, FragAcc::NATURAL_COLS[0]);
        assert_eq!(ctx.counters.shuffle_ops, 2);
    }
}

//! The simulation context: a warp-granular execution handle that performs
//! tensor-core and data-movement operations while charging them to a
//! [`PerfCounters`] set.
//!
//! A context is cheap and tile-local: parallel executors create one per
//! tile/thread-block and [`PerfCounters::merge`] the results afterwards,
//! mirroring how per-block hardware counters aggregate.

use crate::counters::PerfCounters;
use crate::fragment::{FragA, FragAcc, FragB, MMA_K, MMA_M, MMA_N};
use crate::trace::{Trace, TraceEvent};

/// Execution context for one simulated warp (or thread block).
#[derive(Debug, Default, Clone)]
pub struct SimContext {
    /// Counters charged by every operation issued through this context.
    pub counters: PerfCounters,
    /// Shared-memory bytes this block has allocated (for occupancy).
    pub shared_bytes_per_block: u32,
    /// Threads per block (for occupancy).
    pub threads_per_block: u32,
    /// Registers per thread (for occupancy).
    pub regs_per_thread: u32,
    /// Optional instruction trace (see [`crate::trace`]).
    pub(crate) trace: Option<Trace>,
}

impl SimContext {
    /// A fresh context with zeroed counters and default block shape
    /// (256 threads, 64 registers — typical for the paper's kernels).
    pub fn new() -> Self {
        SimContext {
            counters: PerfCounters::new(),
            shared_bytes_per_block: 0,
            threads_per_block: 256,
            regs_per_thread: 64,
            trace: None,
        }
    }

    /// Issue one `mma.m8n8k4.f64`: `D = A × B + C`.
    ///
    /// This is the only way the simulator multiplies fragments, so
    /// `counters.mma_ops` is an exact instruction count.
    pub fn mma(&mut self, a: &FragA, b: &FragB, c: &FragAcc) -> FragAcc {
        let mut d = *c;
        self.mma_into(a, b, &mut d);
        d
    }

    /// In-place `mma.m8n8k4.f64`: `C = A × B + C`. The hot-loop form of
    /// [`SimContext::mma`] — the chained RDG accumulators stay in place
    /// instead of being zeroed and copied per instruction. The per-element
    /// FMA order matches real accumulator semantics (`c + a0·b0 + a1·b1 +
    /// a2·b2 + a3·b3`), so results are bit-identical to [`SimContext::mma`].
    pub fn mma_into(&mut self, a: &FragA, b: &FragB, c: &mut FragAcc) {
        self.counters.mma_ops += 1;
        self.record(TraceEvent::Mma);
        // Lane layout (see `fragment`): A row r is lanes 4r..4r+4; B column
        // n is lanes 4n..4n+4; acc (r, n) is lane 4r + n/2, register n%2 —
        // so register 0 holds the even columns, register 1 the odd ones.
        for r in 0..MMA_M {
            let ar = &a.lanes[4 * r..4 * r + MMA_K];
            for half in 0..MMA_N / 2 {
                let lane = 4 * r + half;
                let be = &b.lanes[8 * half..8 * half + MMA_K];
                let bo = &b.lanes[8 * half + MMA_K..8 * half + 2 * MMA_K];
                let mut e = c.r0[lane];
                let mut o = c.r1[lane];
                for k in 0..MMA_K {
                    e += ar[k] * be[k];
                    o += ar[k] * bo[k];
                }
                c.r0[lane] = e;
                c.r1[lane] = o;
            }
        }
    }

    /// Extract accumulator columns into an A fragment, charging the
    /// shuffle instructions the chosen column set costs on real hardware
    /// (0 for the butterfly sets, 2 for the natural contiguous split —
    /// see [`FragAcc::extract_a`]).
    pub fn acc_to_a(&mut self, acc: &FragAcc, cols: [usize; MMA_K]) -> FragA {
        let (frag, shuffles) = acc.extract_a(cols);
        self.counters.shuffle_ops += shuffles;
        self.record(TraceEvent::AccExtract { cols, shuffles });
        frag
    }

    /// Charge `n` scalar FP64 operations executed on CUDA cores.
    pub fn cuda_flops(&mut self, n: u64) {
        self.counters.cuda_flops += n;
        self.record(TraceEvent::CudaFlops(n));
    }

    /// Charge `n` explicit warp shuffle instructions (used by baselines
    /// that move data between lanes outside fragment extraction).
    pub fn shuffles(&mut self, n: u64) {
        self.counters.shuffle_ops += n;
        self.record(TraceEvent::Shuffles(n));
    }

    /// Record one stencil-point update completion.
    pub fn points(&mut self, n: u64) {
        self.counters.points_updated += n;
    }

    /// Declare the block shape used by this context's kernel so the cost
    /// model can compute occupancy.
    pub fn set_block_shape(&mut self, shared_bytes: u32, threads: u32, regs_per_thread: u32) {
        self.shared_bytes_per_block = shared_bytes;
        self.threads_per_block = threads;
        self.regs_per_thread = regs_per_thread;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_a(f: impl Fn(usize, usize) -> f64) -> FragA {
        let mut m = [[0.0; MMA_K]; MMA_M];
        for (r, row) in m.iter_mut().enumerate() {
            for (k, v) in row.iter_mut().enumerate() {
                *v = f(r, k);
            }
        }
        FragA::from_matrix(&m)
    }

    fn mat_b(f: impl Fn(usize, usize) -> f64) -> FragB {
        let mut m = [[0.0; MMA_N]; MMA_K];
        for (k, row) in m.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = f(k, c);
            }
        }
        FragB::from_matrix(&m)
    }

    #[test]
    fn mma_identity_times_b_is_b_rows() {
        let mut ctx = SimContext::new();
        // A = [I4; 0] so the first 4 rows of D equal B.
        let a = mat_a(|r, k| if r == k { 1.0 } else { 0.0 });
        let b = mat_b(|k, c| (k * 10 + c) as f64);
        let d = ctx.mma(&a, &b, &FragAcc::zero());
        for k in 0..MMA_K {
            for c in 0..MMA_N {
                assert_eq!(d.get(k, c), b.get(k, c));
            }
        }
        for r in MMA_K..MMA_M {
            for c in 0..MMA_N {
                assert_eq!(d.get(r, c), 0.0);
            }
        }
        assert_eq!(ctx.counters.mma_ops, 1);
    }

    #[test]
    fn mma_accumulates_into_c() {
        let mut ctx = SimContext::new();
        let a = mat_a(|_, _| 1.0);
        let b = mat_b(|_, _| 1.0);
        let mut cmat = [[0.0; MMA_N]; MMA_M];
        cmat[3][5] = 7.0;
        let c = FragAcc::from_matrix(&cmat);
        let d = ctx.mma(&a, &b, &c);
        assert_eq!(d.get(3, 5), 4.0 + 7.0);
        assert_eq!(d.get(0, 0), 4.0);
    }

    #[test]
    fn mma_matches_dense_reference() {
        let mut ctx = SimContext::new();
        let a = mat_a(|r, k| (r as f64 + 1.0) * 0.5 + k as f64);
        let b = mat_b(|k, c| (k as f64 - 1.5) * (c as f64 + 0.25));
        let d = ctx.mma(&a, &b, &FragAcc::zero());
        for r in 0..MMA_M {
            for c in 0..MMA_N {
                let mut want = 0.0;
                for k in 0..MMA_K {
                    want += a.get(r, k) * b.get(k, c);
                }
                assert!((d.get(r, c) - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn acc_to_a_charges_shuffles_only_for_nonbutterfly() {
        let mut ctx = SimContext::new();
        let acc = FragAcc::from_matrix(&[[1.0; MMA_N]; MMA_M]);
        ctx.acc_to_a(&acc, FragAcc::BUTTERFLY_COLS[0]);
        ctx.acc_to_a(&acc, FragAcc::BUTTERFLY_COLS[1]);
        assert_eq!(ctx.counters.shuffle_ops, 0);
        ctx.acc_to_a(&acc, FragAcc::NATURAL_COLS[0]);
        assert_eq!(ctx.counters.shuffle_ops, 2);
    }
}

//! FP16 tensor-core path: the `m16n16k16` half-precision MMA generation
//! TCStencil (ICS 2022) targets natively.
//!
//! Two things distinguish it from the FP64 path this workspace centers
//! on:
//!
//! * **fragment shape** — 16×16×16 with FP32 accumulation, modeled here
//!   at whole-fragment granularity (the per-lane register layout only
//!   matters for the FP64 BVS proof; no FP16 method in this workspace
//!   re-feeds accumulators as operands);
//! * **precision** — operands are quantized to IEEE 754 binary16 before
//!   every multiply (round-to-nearest-even) and products accumulate in
//!   FP32, so the *numerical cost* of FP16 stencils — the reason the
//!   paper targets FP64 — is measured, not assumed.
//!
//! Counters: FP16 MMAs are tracked separately ([`crate::PerfCounters::
//! mma_fp16_ops`], 8192 FLOPs each against the 312 TFLOPS FP16 peak) and
//! FP16 data moves 2 bytes per element.

use crate::context::SimContext;
use crate::shared::SharedTile;

/// Rows/cols/depth of the FP16 MMA shape.
pub const MMA16: usize = 16;

/// FLOPs performed by one `m16n16k16` MMA: `2 · 16³`.
pub const FLOPS_PER_MMA16: u64 = 2 * 16 * 16 * 16;

/// Round an `f64` to the nearest IEEE 754 binary16 value (ties to even),
/// returned as `f64`. Overflow saturates to ±∞ like hardware conversion.
pub fn quantize_f16(x: f64) -> f64 {
    let x32 = x as f32;
    let bits = x32.to_bits();
    let sign = bits >> 31;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // inf / NaN pass through
        return x32 as f64;
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        // overflow → ±inf (hardware cvt behaviour)
        return if sign == 1 { f64::NEG_INFINITY } else { f64::INFINITY };
    }
    let h = if unbiased >= -14 {
        // normal half: keep 10 mantissa bits, round to nearest even
        let shift = 13;
        let halfway = 1u32 << (shift - 1);
        let mut m = mant >> shift;
        let rem = mant & ((1 << shift) - 1);
        if rem > halfway || (rem == halfway && (m & 1) == 1) {
            m += 1;
        }
        // invariant: -14 <= unbiased <= 15 on this branch, so the biased
        // exponent is in 1..=30 and the cast cannot wrap
        debug_assert!((1..=30).contains(&(unbiased + 15)));
        let mut e = (unbiased + 15) as u32;
        if m == 0x400 {
            // mantissa rounded over: bump exponent
            m = 0;
            e += 1;
            if e >= 31 {
                return if sign == 1 { f64::NEG_INFINITY } else { f64::INFINITY };
            }
        }
        ((sign << 15) | (e << 10) | m) as u16
    } else if unbiased >= -24 {
        // subnormal half
        // invariant: -24 <= unbiased < -14 on this branch, so the extra
        // shift is in 1..=10 and the cast cannot wrap
        debug_assert!((1..=10).contains(&(-14 - unbiased)));
        let shift = 13 + (-14 - unbiased) as u32;
        let full = mant | 0x80_0000;
        let halfway = 1u32 << (shift - 1);
        let mut m = full >> shift;
        let rem = full & ((1 << shift) - 1);
        if rem > halfway || (rem == halfway && (m & 1) == 1) {
            m += 1;
        }
        ((sign << 15) | m) as u16
    } else {
        // underflow → signed zero
        (sign << 15) as u16
    };
    half_bits_to_f64(h)
}

/// Decode binary16 bits to `f64`.
fn half_bits_to_f64(h: u16) -> f64 {
    let sign = if h >> 15 == 1 { -1.0 } else { 1.0 };
    let exp = ((h >> 10) & 0x1F) as i32;
    let mant = (h & 0x3FF) as f64;
    match exp {
        0 => sign * mant * 2f64.powi(-24),
        31 => {
            if mant == 0.0 {
                sign * f64::INFINITY
            } else {
                f64::NAN
            }
        }
        _ => sign * (1.0 + mant / 1024.0) * 2f64.powi(exp - 15),
    }
}

/// A 16×16 FP16 operand fragment (values stored pre-quantized).
#[derive(Debug, Clone)]
pub struct Frag16 {
    data: [[f64; MMA16]; MMA16],
}

impl Frag16 {
    /// All-zero fragment.
    pub fn zero() -> Self {
        Frag16 { data: [[0.0; MMA16]; MMA16] }
    }

    /// Build from a closure, quantizing every element to binary16.
    pub fn from_fn(f: impl Fn(usize, usize) -> f64) -> Self {
        let mut frag = Self::zero();
        for (i, row) in frag.data.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = quantize_f16(f(i, j));
            }
        }
        frag
    }

    /// Element access (already binary16-rounded).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i][j]
    }
}

/// A 16×16 FP32 accumulator fragment.
#[derive(Debug, Clone)]
pub struct Acc16 {
    data: [[f32; MMA16]; MMA16],
}

impl Acc16 {
    /// All-zero accumulator.
    pub fn zero() -> Self {
        Acc16 { data: [[0.0; MMA16]; MMA16] }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i][j]
    }
}

impl SimContext {
    /// Issue one `m16n16k16` FP16 MMA with FP32 accumulation:
    /// `D = A × B + C`. Operands are binary16 values; every partial
    /// product is rounded to FP32 on accumulation, as the hardware does.
    pub fn mma16(&mut self, a: &Frag16, b: &Frag16, c: &Acc16) -> Acc16 {
        self.counters.mma_fp16_ops += 1;
        self.record(crate::trace::TraceEvent::Mma16);
        let mut d = Acc16::zero();
        for i in 0..MMA16 {
            for j in 0..MMA16 {
                let mut acc = c.data[i][j];
                for k in 0..MMA16 {
                    acc += (a.data[i][k] * b.data[k][j]) as f32;
                }
                d.data[i][j] = acc;
            }
        }
        d
    }
}

/// Warp-load a 16×16 FP16 fragment from a shared tile (quantizing), with
/// zero padding outside the tile. FP16 elements are 2 bytes, so the 256
/// elements fit one warp-level request.
pub fn load_frag16(ctx: &mut SimContext, tile: &SharedTile, r0: isize, c0: isize) -> Frag16 {
    ctx.counters.shared_load_requests += 1;
    Frag16::from_fn(|i, j| {
        let (r, c) = (r0 + i as isize, c0 + j as isize);
        if r < 0 || c < 0 || r as usize >= tile.rows() || c as usize >= tile.cols() {
            0.0
        } else {
            tile.peek(r as usize, c as usize)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_matches_known_binary16_values() {
        assert_eq!(quantize_f16(1.0), 1.0);
        assert_eq!(quantize_f16(0.5), 0.5);
        assert_eq!(quantize_f16(65504.0), 65504.0); // f16 max normal
        assert_eq!(quantize_f16(65536.0), f64::INFINITY); // overflow
        assert_eq!(quantize_f16(-65536.0), f64::NEG_INFINITY);
        // 1/3 is not representable: nearest half is 0.33325195
        assert!((quantize_f16(1.0 / 3.0) - 0.333_251_953_125).abs() < 1e-12);
        // smallest subnormal
        assert!((quantize_f16(6e-8) - 5.960_464_477_539_063e-8).abs() < 1e-20);
        // underflow to zero
        assert_eq!(quantize_f16(1e-12), 0.0);
        assert_eq!(quantize_f16(0.0), 0.0);
    }

    #[test]
    fn quantization_is_idempotent() {
        for x in [0.1, -3.7, 1234.56, 2f64.powi(-20), 0.999] {
            let q = quantize_f16(x);
            assert_eq!(quantize_f16(q), q, "x = {x}");
        }
    }

    #[test]
    fn quantization_error_is_bounded_by_half_ulp() {
        // relative error of binary16 rounding ≤ 2^-11 for normals
        for i in 1..2000 {
            let x = i as f64 * 0.173;
            let q = quantize_f16(x);
            assert!(((q - x) / x).abs() <= 2f64.powi(-11) + 1e-15, "x = {x}, q = {q}");
        }
    }

    #[test]
    fn mma16_matches_dense_product_in_low_precision() {
        let mut ctx = SimContext::new();
        let a = Frag16::from_fn(|i, j| (i as f64 - j as f64) * 0.125);
        let b = Frag16::from_fn(|i, j| (i + 2 * j) as f64 * 0.0625);
        let d = ctx.mma16(&a, &b, &Acc16::zero());
        assert_eq!(ctx.counters.mma_fp16_ops, 1);
        for i in 0..MMA16 {
            for j in 0..MMA16 {
                let exact: f64 = (0..MMA16).map(|k| a.get(i, k) * b.get(k, j)).sum();
                // fp32 accumulation error over 16 adds is tiny here
                assert!((d.get(i, j) as f64 - exact).abs() < 1e-3, "({i},{j})");
            }
        }
    }

    #[test]
    fn load_frag16_counts_one_request_and_quantizes() {
        let mut ctx = SimContext::new();
        let mut tile = SharedTile::new(16, 16);
        tile.poke(3, 3, 1.0 / 3.0);
        let f = load_frag16(&mut ctx, &tile, 0, 0);
        assert_eq!(ctx.counters.shared_load_requests, 1);
        assert!((f.get(3, 3) - 0.333_251_953_125).abs() < 1e-12);
    }
}

//! Warp-level fragments for FP64 `mma.m8n8k4` with the exact per-thread
//! register layout of the A100 (PTX ISA §9.7.13, paper Fig. 6).
//!
//! A warp has 32 lanes. For the FP64 shape `m8n8k4`:
//!
//! * fragment **A** is 8×4 — each lane holds exactly one element, element
//!   `(r, k)` lives in lane `4r + k`;
//! * fragment **B** is 4×8 — each lane holds one element, element `(k, c)`
//!   lives in lane `4c + k`;
//! * the **accumulator** C/D is 8×8 — each lane holds two elements in
//!   registers R0/R1, element `(r, c)` lives in lane `4r + c/2`,
//!   register `c mod 2`.
//!
//! Keeping this mapping explicit is what lets the simulator *prove* the
//! Butterfly Vector Swapping property: extracting strided accumulator
//! columns into an A fragment requires zero cross-lane moves, while the
//! natural contiguous split does not (see [`FragAcc::extract_a`]).

/// Number of threads (lanes) in a warp.
pub const WARP_LANES: usize = 32;

/// Rows of fragment A / the accumulator (`m` in `m8n8k4`).
pub const MMA_M: usize = 8;
/// Columns of fragment B / the accumulator (`n` in `m8n8k4`).
pub const MMA_N: usize = 8;
/// Inner dimension (`k` in `m8n8k4`).
pub const MMA_K: usize = 4;

/// Lane that owns element `(r, k)` of fragment A.
#[inline]
pub fn a_lane(r: usize, k: usize) -> usize {
    debug_assert!(r < MMA_M && k < MMA_K);
    4 * r + k
}

/// Lane that owns element `(k, c)` of fragment B.
#[inline]
pub fn b_lane(k: usize, c: usize) -> usize {
    debug_assert!(k < MMA_K && c < MMA_N);
    4 * c + k
}

/// `(lane, register)` that owns element `(r, c)` of the accumulator.
#[inline]
pub fn acc_lane_reg(r: usize, c: usize) -> (usize, usize) {
    debug_assert!(r < MMA_M && c < MMA_N);
    (4 * r + c / 2, c % 2)
}

/// 8×4 left-operand fragment (one FP64 element per lane).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragA {
    /// Per-lane register contents, indexed by lane id.
    pub lanes: [f64; WARP_LANES],
}

/// 2:4 structured-sparse left-operand fragment for `mma.sp.m8n8k4.f64`.
///
/// Each 8-element A row covers exactly one K window of four elements, so
/// the 2:4 constraint is per-row: at most two of the four K products may
/// be nonzero. The fragment stores the (up to) two surviving values per
/// row plus their 2-bit K indices — the "metadata" that on hardware lives
/// in a separate sparsity-metadata register and steers the tensor core's
/// operand muxes.
///
/// Rows with fewer than two nonzeros are padded with `+0.0` values
/// (index slot 0); [`crate::SimContext::mma_sp_into`] skips padded slots,
/// which is bit-exact because a `+0.0`-seeded accumulator can never reach
/// `-0.0` under round-to-nearest, so adding a `±0.0` product is always an
/// identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragASp {
    /// Up to two surviving values per row, in increasing-K order.
    pub vals: [[f64; 2]; MMA_M],
    /// 2-bit K index of each surviving value (the sparsity metadata).
    pub idx: [[u8; 2]; MMA_M],
}

impl FragASp {
    /// 2:4-compress a dense A fragment, validating the sparsity pattern.
    ///
    /// Returns `None` — the fragment is **not** 2:4-compressible — when
    /// any row carries three or more nonzero K elements. This is the
    /// pattern validator the schedule's sparse lowering uses to decide
    /// between a sparse MMA and the per-term dense fallback.
    ///
    /// Both zero bit patterns (`+0.0`, `-0.0`) count as prunable: either
    /// way the pruned product is a signed zero, which cannot perturb a
    /// `+0.0`-seeded accumulation.
    pub fn compress(dense: &FragA) -> Option<FragASp> {
        let mut sp = FragASp { vals: [[0.0; 2]; MMA_M], idx: [[0; 2]; MMA_M] };
        for r in 0..MMA_M {
            let mut nnz = 0usize;
            for k in 0..MMA_K {
                let v = dense.get(r, k);
                if v != 0.0 {
                    if nnz == 2 {
                        return None;
                    }
                    sp.vals[r][nnz] = v;
                    sp.idx[r][nnz] = k as u8;
                    nnz += 1;
                }
            }
        }
        Some(sp)
    }

    /// Expand back to the dense 8×4 fragment the metadata describes.
    pub fn decompress(&self) -> FragA {
        let mut dense = FragA::zero();
        for r in 0..MMA_M {
            for s in 0..2 {
                let v = self.vals[r][s];
                if v != 0.0 {
                    dense.set(r, usize::from(self.idx[r][s]), v);
                }
            }
        }
        dense
    }
}

/// 4×8 right-operand fragment (one FP64 element per lane).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragB {
    /// Per-lane register contents, indexed by lane id.
    pub lanes: [f64; WARP_LANES],
}

/// 8×8 accumulator fragment (two FP64 registers per lane).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragAcc {
    /// Register 0 of each lane.
    pub r0: [f64; WARP_LANES],
    /// Register 1 of each lane.
    pub r1: [f64; WARP_LANES],
}

impl FragA {
    /// All-zero fragment.
    pub fn zero() -> Self {
        FragA { lanes: [0.0; WARP_LANES] }
    }

    /// Build a fragment from a row-major 8×4 matrix.
    pub fn from_matrix(m: &[[f64; MMA_K]; MMA_M]) -> Self {
        let mut f = Self::zero();
        for r in 0..MMA_M {
            for k in 0..MMA_K {
                f.lanes[a_lane(r, k)] = m[r][k];
            }
        }
        f
    }

    /// Element `(r, k)` as the owning lane sees it.
    #[inline]
    pub fn get(&self, r: usize, k: usize) -> f64 {
        self.lanes[a_lane(r, k)]
    }

    /// Set element `(r, k)` in the owning lane.
    #[inline]
    pub fn set(&mut self, r: usize, k: usize, v: f64) {
        self.lanes[a_lane(r, k)] = v;
    }

    /// Reconstruct the row-major matrix (for checking, not a warp op).
    pub fn to_matrix(&self) -> [[f64; MMA_K]; MMA_M] {
        let mut m = [[0.0; MMA_K]; MMA_M];
        for r in 0..MMA_M {
            for k in 0..MMA_K {
                m[r][k] = self.get(r, k);
            }
        }
        m
    }
}

impl FragB {
    /// All-zero fragment.
    pub fn zero() -> Self {
        FragB { lanes: [0.0; WARP_LANES] }
    }

    /// Build a fragment from a row-major 4×8 matrix.
    pub fn from_matrix(m: &[[f64; MMA_N]; MMA_K]) -> Self {
        let mut f = Self::zero();
        for k in 0..MMA_K {
            for c in 0..MMA_N {
                f.lanes[b_lane(k, c)] = m[k][c];
            }
        }
        f
    }

    /// Element `(k, c)` as the owning lane sees it.
    #[inline]
    pub fn get(&self, k: usize, c: usize) -> f64 {
        self.lanes[b_lane(k, c)]
    }

    /// Set element `(k, c)` in the owning lane.
    #[inline]
    pub fn set(&mut self, k: usize, c: usize, v: f64) {
        self.lanes[b_lane(k, c)] = v;
    }

    /// Reconstruct the row-major matrix (for checking, not a warp op).
    pub fn to_matrix(&self) -> [[f64; MMA_N]; MMA_K] {
        let mut m = [[0.0; MMA_N]; MMA_K];
        for k in 0..MMA_K {
            for c in 0..MMA_N {
                m[k][c] = self.get(k, c);
            }
        }
        m
    }
}

impl FragAcc {
    /// All-zero accumulator.
    pub fn zero() -> Self {
        FragAcc { r0: [0.0; WARP_LANES], r1: [0.0; WARP_LANES] }
    }

    /// Build an accumulator from a row-major 8×8 matrix.
    pub fn from_matrix(m: &[[f64; MMA_N]; MMA_M]) -> Self {
        let mut f = Self::zero();
        for r in 0..MMA_M {
            for c in 0..MMA_N {
                f.set(r, c, m[r][c]);
            }
        }
        f
    }

    /// Element `(r, c)` as the owning lane/register sees it.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (lane, reg) = acc_lane_reg(r, c);
        if reg == 0 {
            self.r0[lane]
        } else {
            self.r1[lane]
        }
    }

    /// Set element `(r, c)` in the owning lane/register.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        let (lane, reg) = acc_lane_reg(r, c);
        if reg == 0 {
            self.r0[lane] = v;
        } else {
            self.r1[lane] = v;
        }
    }

    /// Reconstruct the row-major matrix (for checking, not a warp op).
    pub fn to_matrix(&self) -> [[f64; MMA_N]; MMA_M] {
        let mut m = [[0.0; MMA_N]; MMA_M];
        for r in 0..MMA_M {
            for c in 0..MMA_N {
                m[r][c] = self.get(r, c);
            }
        }
        m
    }

    /// Extract accumulator columns `cols` (in order) into a left-operand A
    /// fragment, returning the fragment together with the number of
    /// warp-wide shuffle instructions the extraction costs on real
    /// hardware.
    ///
    /// Element `A(r, j) = self(r, cols[j])` must end up in lane `4r + j`.
    /// It currently lives in lane `4r + cols[j]/2`, register `cols[j] % 2`.
    /// A `__shfl_sync` moves one register variable across all lanes at
    /// once, so the cost is one shuffle per *source register* that any
    /// element must cross lanes from:
    ///
    /// * the butterfly column sets `{0,2,4,6}` and `{1,3,5,7}` place every
    ///   element in exactly the lane the A layout wants → **0 shuffles**
    ///   (the Butterfly Vector Swapping guarantee, §III-D);
    /// * the natural splits `{0,1,2,3}` / `{4,5,6,7}` need both registers
    ///   moved across lanes → 2 shuffles each.
    #[inline]
    pub fn extract_a(&self, cols: [usize; MMA_K]) -> (FragA, u64) {
        // The butterfly sets map element (r, cols[j]) from lane 4r+j,
        // register `reg`, to lane 4r+j of the A fragment: the extraction
        // is exactly one per-lane register copy (and zero shuffles).
        if cols == Self::BUTTERFLY_COLS[0] {
            return (FragA { lanes: self.r0 }, 0);
        }
        if cols == Self::BUTTERFLY_COLS[1] {
            return (FragA { lanes: self.r1 }, 0);
        }
        let mut frag = FragA::zero();
        let mut reg_needs_shuffle = [false; 2];
        for r in 0..MMA_M {
            for (j, &c) in cols.iter().enumerate() {
                debug_assert!(c < MMA_N);
                let (src_lane, src_reg) = acc_lane_reg(r, c);
                let dst_lane = a_lane(r, j);
                if src_lane != dst_lane {
                    reg_needs_shuffle[src_reg] = true;
                }
                frag.lanes[dst_lane] = self.get(r, c);
            }
        }
        let shuffles = reg_needs_shuffle.iter().filter(|&&b| b).count() as u64;
        (frag, shuffles)
    }

    /// The two butterfly column sets of §III-D: even columns (register 0)
    /// and odd columns (register 1). Extracting either with
    /// [`FragAcc::extract_a`] costs zero shuffles.
    pub const BUTTERFLY_COLS: [[usize; MMA_K]; 2] = [[0, 2, 4, 6], [1, 3, 5, 7]];

    /// The natural contiguous column split (left half, right half), which
    /// is what a direct mathematical partition of the accumulator would
    /// use. Extracting these costs shuffles.
    pub const NATURAL_COLS: [[usize; MMA_K]; 2] = [[0, 1, 2, 3], [4, 5, 6, 7]];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota_acc() -> FragAcc {
        let mut m = [[0.0; MMA_N]; MMA_M];
        for (r, row) in m.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (r * MMA_N + c) as f64;
            }
        }
        FragAcc::from_matrix(&m)
    }

    #[test]
    fn a_layout_roundtrip() {
        let mut m = [[0.0; MMA_K]; MMA_M];
        for (r, row) in m.iter_mut().enumerate() {
            for (k, v) in row.iter_mut().enumerate() {
                *v = (10 * r + k) as f64;
            }
        }
        let f = FragA::from_matrix(&m);
        assert_eq!(f.to_matrix(), m);
    }

    #[test]
    fn b_layout_roundtrip() {
        let mut m = [[0.0; MMA_N]; MMA_K];
        for (k, row) in m.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (10 * k + c) as f64;
            }
        }
        let f = FragB::from_matrix(&m);
        assert_eq!(f.to_matrix(), m);
    }

    #[test]
    fn acc_layout_matches_paper_fig6() {
        // Paper Fig. 6(a): thread T0 holds C(0,0) in R0 and C(0,1) in R1.
        let acc = iota_acc();
        assert_eq!(acc.r0[0], 0.0);
        assert_eq!(acc.r1[0], 1.0);
        // T1 holds C(0,2), C(0,3); T4 holds C(1,0), C(1,1).
        assert_eq!(acc.r0[1], 2.0);
        assert_eq!(acc.r1[1], 3.0);
        assert_eq!(acc.r0[4], 8.0);
        assert_eq!(acc.r1[4], 9.0);
    }

    #[test]
    fn butterfly_extraction_is_shuffle_free() {
        let acc = iota_acc();
        for cols in FragAcc::BUTTERFLY_COLS {
            let (frag, shuffles) = acc.extract_a(cols);
            assert_eq!(shuffles, 0, "butterfly cols {cols:?} must not shuffle");
            for r in 0..MMA_M {
                for (j, &c) in cols.iter().enumerate() {
                    assert_eq!(frag.get(r, j), acc.get(r, c));
                }
            }
        }
    }

    #[test]
    fn natural_extraction_costs_shuffles() {
        let acc = iota_acc();
        for cols in FragAcc::NATURAL_COLS {
            let (frag, shuffles) = acc.extract_a(cols);
            assert_eq!(shuffles, 2, "natural cols {cols:?} need both regs moved");
            for r in 0..MMA_M {
                for (j, &c) in cols.iter().enumerate() {
                    assert_eq!(frag.get(r, j), acc.get(r, c));
                }
            }
        }
    }

    #[test]
    fn sparse_compress_roundtrips_2_4_patterns() {
        // two nonzeros per row at varying K positions, including rows
        // with one and zero survivors
        let mut m = [[0.0; MMA_K]; MMA_M];
        m[0][0] = 1.5;
        m[0][3] = -2.5;
        m[1][1] = 4.0;
        m[1][2] = 0.25;
        m[2][2] = -0.5;
        // row 3 left all-zero
        m[4][0] = 7.0;
        m[4][1] = 8.0;
        let dense = FragA::from_matrix(&m);
        let sp = FragASp::compress(&dense).expect("2:4 pattern must compress");
        assert_eq!(sp.vals[0], [1.5, -2.5]);
        assert_eq!(sp.idx[0], [0, 3]);
        assert_eq!(sp.vals[2], [-0.5, 0.0]);
        assert_eq!(sp.idx[2], [2, 0]);
        assert_eq!(sp.vals[3], [0.0, 0.0]);
        assert_eq!(sp.decompress(), dense);
    }

    #[test]
    fn sparse_compress_rejects_rows_with_three_nonzeros() {
        let mut m = [[0.0; MMA_K]; MMA_M];
        m[5][0] = 1.0;
        m[5][1] = 2.0;
        m[5][2] = 3.0;
        assert!(FragASp::compress(&FragA::from_matrix(&m)).is_none());
        // a full row is likewise rejected
        let mut full = [[0.0; MMA_K]; MMA_M];
        full[0] = [1.0, 1.0, 1.0, 1.0];
        assert!(FragASp::compress(&FragA::from_matrix(&full)).is_none());
    }

    #[test]
    fn sparse_compress_treats_negative_zero_as_prunable() {
        let mut m = [[0.0; MMA_K]; MMA_M];
        m[0][0] = -0.0;
        m[0][1] = 1.0;
        m[0][2] = -0.0;
        m[0][3] = 2.0;
        let sp = FragASp::compress(&FragA::from_matrix(&m)).expect("signed zeros prune");
        assert_eq!(sp.vals[0], [1.0, 2.0]);
        assert_eq!(sp.idx[0], [1, 3]);
    }

    #[test]
    fn every_lane_owns_exactly_one_a_and_b_element() {
        let mut seen_a = [false; WARP_LANES];
        for r in 0..MMA_M {
            for k in 0..MMA_K {
                let l = a_lane(r, k);
                assert!(!seen_a[l]);
                seen_a[l] = true;
            }
        }
        assert!(seen_a.iter().all(|&s| s));
        let mut seen_b = [false; WARP_LANES];
        for k in 0..MMA_K {
            for c in 0..MMA_N {
                let l = b_lane(k, c);
                assert!(!seen_b[l]);
                seen_b[l] = true;
            }
        }
        assert!(seen_b.iter().all(|&s| s));
    }

    #[test]
    fn every_lane_owns_two_acc_elements() {
        let mut count = [0usize; WARP_LANES];
        for r in 0..MMA_M {
            for c in 0..MMA_N {
                count[acc_lane_reg(r, c).0] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 2));
    }
}

//! Simulated shared memory: a 2-D FP64 tile with warp-level request
//! accounting, the counter Fig. 10 of the paper reads through Nsight
//! Compute ("shared memory loads, stores and total requests").
//!
//! Request model: every warp-level instruction touching shared memory is
//! one request —
//! * loading an A/B fragment (32 lanes × 1 element) → 1 load request;
//! * storing an accumulator (32 lanes × 2 registers) → 2 store requests;
//! * a warp-wide scalar access of up to 32 elements → 1 request.
//!
//! Bank conflicts are not modeled; both LoRAStencil and ConvStencil use
//! conflict-free layouts, so conflicts would add equal constant factors.

use crate::context::SimContext;
use crate::fragment::{FragA, FragAcc, FragB, MMA_K, MMA_M, MMA_N};
use crate::trace::TraceEvent;

/// A 2-D tile resident in simulated shared memory.
#[derive(Debug, Clone)]
pub struct SharedTile {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl SharedTile {
    /// Allocate a zeroed `rows × cols` tile.
    ///
    /// # Panics
    ///
    /// Panics with a typed message when `rows × cols` overflows `usize`
    /// (instead of silently wrapping into a tiny allocation).
    pub fn new(rows: usize, cols: usize) -> Self {
        let n = rows.checked_mul(cols).expect("shared tile extent rows*cols overflows usize");
        SharedTile { rows, cols, data: vec![0.0; n] }
    }

    /// Reshape for reuse as a zeroed `rows × cols` tile, keeping the
    /// backing allocation when it is already large enough (the
    /// per-worker scratch path: no allocation in steady state).
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        let n = rows.checked_mul(cols).expect("shared tile extent rows*cols overflows usize");
        self.data.clear();
        self.data.resize(n, 0.0);
    }

    /// Tile height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Tile width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Size of the allocation in bytes (for occupancy accounting).
    ///
    /// # Panics
    ///
    /// Panics with a typed message when the allocation exceeds the
    /// 32-bit byte range the occupancy model works in — a tile that
    /// large could never be shared memory, so a silent `as u32`
    /// truncation would only hide a caller bug.
    pub fn bytes(&self) -> u32 {
        let bytes = self.data.len() * std::mem::size_of::<f64>();
        u32::try_from(bytes).expect("shared tile exceeds the u32 byte range of the occupancy model")
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        r * self.cols + c
    }

    /// Direct element read *without* request accounting — used only to
    /// fill or inspect tiles from the host side of the simulation.
    #[inline]
    pub fn peek(&self, r: usize, c: usize) -> f64 {
        self.data[self.idx(r, c)]
    }

    /// Direct element write without request accounting (host side).
    #[inline]
    pub fn poke(&mut self, r: usize, c: usize, v: f64) {
        let i = self.idx(r, c);
        self.data[i] = v;
    }

    /// Direct row-segment write without request accounting (host side):
    /// the contiguous fast path of [`crate::GlobalArray::copy_to_shared`].
    #[inline]
    pub fn write_row(&mut self, r: usize, c0: usize, vals: &[f64]) {
        let i = self.idx(r, c0);
        self.data[i..i + vals.len()].copy_from_slice(vals);
    }

    /// Warp-load an 8×4 A fragment whose top-left corner is `(r0, c0)`.
    /// Out-of-bounds elements read as zero (the zero-padded borders the
    /// paper's weight matrices rely on).
    #[inline]
    pub fn load_frag_a(&self, ctx: &mut SimContext, r0: isize, c0: isize) -> FragA {
        ctx.counters.shared_load_requests += 1;
        ctx.record(TraceEvent::SharedLoad);
        let mut f = FragA::zero();
        if self.window_in_bounds(r0, c0, MMA_M, MMA_K) {
            // common case: one bounds check for the whole 8×4 window,
            // rows read contiguously into lanes 4r..4r+4
            let (r0, c0) = (r0 as usize, c0 as usize);
            for dr in 0..MMA_M {
                let base = (r0 + dr) * self.cols + c0;
                f.lanes[4 * dr..4 * dr + MMA_K].copy_from_slice(&self.data[base..base + MMA_K]);
            }
        } else {
            for dr in 0..MMA_M {
                for dc in 0..MMA_K {
                    f.set(dr, dc, self.get_or_zero(r0 + dr as isize, c0 + dc as isize));
                }
            }
        }
        f
    }

    /// Warp-load a 4×8 B fragment whose top-left corner is `(r0, c0)`.
    #[inline]
    pub fn load_frag_b(&self, ctx: &mut SimContext, r0: isize, c0: isize) -> FragB {
        ctx.counters.shared_load_requests += 1;
        ctx.record(TraceEvent::SharedLoad);
        let mut f = FragB::zero();
        if self.window_in_bounds(r0, c0, MMA_K, MMA_N) {
            // element (k, c) lives in lane 4c + k: each tile row scatters
            // with stride 4, but needs no per-element bounds check
            let (r0, c0) = (r0 as usize, c0 as usize);
            for dk in 0..MMA_K {
                let base = (r0 + dk) * self.cols + c0;
                for dc in 0..MMA_N {
                    f.lanes[4 * dc + dk] = self.data[base + dc];
                }
            }
        } else {
            for dk in 0..MMA_K {
                for dc in 0..MMA_N {
                    f.set(dk, dc, self.get_or_zero(r0 + dk as isize, c0 + dc as isize));
                }
            }
        }
        f
    }

    /// Whether the `h × w` window at `(r0, c0)` lies fully inside the tile.
    #[inline]
    fn window_in_bounds(&self, r0: isize, c0: isize, h: usize, w: usize) -> bool {
        r0 >= 0 && c0 >= 0 && r0 as usize + h <= self.rows && c0 as usize + w <= self.cols
    }

    /// Warp-store an 8×8 accumulator at `(r0, c0)` (2 store requests: one
    /// per accumulator register).
    pub fn store_acc(&mut self, ctx: &mut SimContext, r0: usize, c0: usize, acc: &FragAcc) {
        ctx.counters.shared_store_requests += 2;
        ctx.record(TraceEvent::SharedStore);
        for r in 0..MMA_M {
            for c in 0..MMA_N {
                self.poke(r0 + r, c0 + c, acc.get(r, c));
            }
        }
    }

    /// Warp-wide scalar load of up to 32 contiguous elements of row `r`
    /// starting at column `c0` (1 load request). Returns the values.
    pub fn load_row_span(&self, ctx: &mut SimContext, r: usize, c0: usize, len: usize) -> Vec<f64> {
        let mut out = vec![0.0; len];
        self.load_row_span_into(ctx, r, c0, &mut out);
        out
    }

    /// Allocation-free [`SharedTile::load_row_span`]: fills `dst` (whose
    /// length is the span length) instead of returning a fresh `Vec`.
    pub fn load_row_span_into(&self, ctx: &mut SimContext, r: usize, c0: usize, dst: &mut [f64]) {
        assert!(dst.len() <= 32, "a warp loads at most 32 elements per request");
        ctx.counters.shared_load_requests += 1;
        if dst.is_empty() {
            return;
        }
        let base = self.idx(r, c0);
        dst.copy_from_slice(&self.data[base..base + dst.len()]);
    }

    /// Warp-wide scalar store of up to 32 contiguous elements (1 request).
    pub fn store_row_span(&mut self, ctx: &mut SimContext, r: usize, c0: usize, vals: &[f64]) {
        assert!(vals.len() <= 32);
        ctx.counters.shared_store_requests += 1;
        for (i, &v) in vals.iter().enumerate() {
            self.poke(r, c0 + i, v);
        }
    }

    #[inline]
    fn get_or_zero(&self, r: isize, c: isize) -> f64 {
        if r < 0 || c < 0 || r as usize >= self.rows || c as usize >= self.cols {
            0.0
        } else {
            self.data[r as usize * self.cols + c as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frag_loads_count_one_request_each() {
        let mut ctx = SimContext::new();
        let mut tile = SharedTile::new(16, 16);
        tile.poke(2, 3, 5.0);
        let a = tile.load_frag_a(&mut ctx, 0, 0);
        let b = tile.load_frag_b(&mut ctx, 0, 0);
        assert_eq!(ctx.counters.shared_load_requests, 2);
        assert_eq!(a.get(2, 3), 5.0);
        assert_eq!(b.get(2, 3), 5.0);
    }

    #[test]
    fn out_of_bounds_reads_zero_pad() {
        let mut ctx = SimContext::new();
        let mut tile = SharedTile::new(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                tile.poke(r, c, 1.0);
            }
        }
        let a = tile.load_frag_a(&mut ctx, -2, -2);
        // rows 0..2 / cols 0..2 of the fragment fall outside the tile.
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.get(2, 2), 1.0);
    }

    #[test]
    fn acc_store_counts_two_requests() {
        let mut ctx = SimContext::new();
        let mut tile = SharedTile::new(8, 8);
        let acc = FragAcc::from_matrix(&[[2.5; 8]; 8]);
        tile.store_acc(&mut ctx, 0, 0, &acc);
        assert_eq!(ctx.counters.shared_store_requests, 2);
        assert_eq!(tile.peek(7, 7), 2.5);
    }

    #[test]
    fn row_span_roundtrip() {
        let mut ctx = SimContext::new();
        let mut tile = SharedTile::new(2, 32);
        let vals: Vec<f64> = (0..32).map(|i| i as f64).collect();
        tile.store_row_span(&mut ctx, 1, 0, &vals);
        let back = tile.load_row_span(&mut ctx, 1, 0, 32);
        assert_eq!(back, vals);
        assert_eq!(ctx.counters.shared_load_requests, 1);
        assert_eq!(ctx.counters.shared_store_requests, 1);
    }

    #[test]
    #[should_panic]
    fn row_span_longer_than_warp_panics() {
        let mut ctx = SimContext::new();
        let tile = SharedTile::new(2, 64);
        tile.load_row_span(&mut ctx, 0, 0, 33);
    }
}

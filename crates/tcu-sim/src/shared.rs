//! Simulated shared memory: a 2-D FP64 tile with warp-level request
//! accounting, the counter Fig. 10 of the paper reads through Nsight
//! Compute ("shared memory loads, stores and total requests").
//!
//! Request model: every warp-level instruction touching shared memory is
//! one request —
//! * loading an A/B fragment (32 lanes × 1 element) → 1 load request;
//! * storing an accumulator (32 lanes × 2 registers) → 2 store requests;
//! * a warp-wide scalar access of up to 32 elements → 1 request.
//!
//! Bank conflicts are not modeled; both LoRAStencil and ConvStencil use
//! conflict-free layouts, so conflicts would add equal constant factors.

use crate::context::SimContext;
use crate::fragment::{FragA, FragAcc, FragB, MMA_K, MMA_M, MMA_N};
use crate::trace::TraceEvent;

/// A 2-D tile resident in simulated shared memory.
#[derive(Debug, Clone)]
pub struct SharedTile {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl SharedTile {
    /// Allocate a zeroed `rows × cols` tile.
    pub fn new(rows: usize, cols: usize) -> Self {
        SharedTile { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Tile height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Tile width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Size of the allocation in bytes (for occupancy accounting).
    pub fn bytes(&self) -> u32 {
        (self.data.len() * std::mem::size_of::<f64>()) as u32
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        r * self.cols + c
    }

    /// Direct element read *without* request accounting — used only to
    /// fill or inspect tiles from the host side of the simulation.
    #[inline]
    pub fn peek(&self, r: usize, c: usize) -> f64 {
        self.data[self.idx(r, c)]
    }

    /// Direct element write without request accounting (host side).
    #[inline]
    pub fn poke(&mut self, r: usize, c: usize, v: f64) {
        let i = self.idx(r, c);
        self.data[i] = v;
    }

    /// Warp-load an 8×4 A fragment whose top-left corner is `(r0, c0)`.
    /// Out-of-bounds elements read as zero (the zero-padded borders the
    /// paper's weight matrices rely on).
    pub fn load_frag_a(&self, ctx: &mut SimContext, r0: isize, c0: isize) -> FragA {
        ctx.counters.shared_load_requests += 1;
        ctx.record(TraceEvent::SharedLoad);
        let mut m = [[0.0; MMA_K]; MMA_M];
        for (dr, row) in m.iter_mut().enumerate() {
            for (dc, v) in row.iter_mut().enumerate() {
                *v = self.get_or_zero(r0 + dr as isize, c0 + dc as isize);
            }
        }
        FragA::from_matrix(&m)
    }

    /// Warp-load a 4×8 B fragment whose top-left corner is `(r0, c0)`.
    pub fn load_frag_b(&self, ctx: &mut SimContext, r0: isize, c0: isize) -> FragB {
        ctx.counters.shared_load_requests += 1;
        ctx.record(TraceEvent::SharedLoad);
        let mut m = [[0.0; MMA_N]; MMA_K];
        for (dr, row) in m.iter_mut().enumerate() {
            for (dc, v) in row.iter_mut().enumerate() {
                *v = self.get_or_zero(r0 + dr as isize, c0 + dc as isize);
            }
        }
        FragB::from_matrix(&m)
    }

    /// Warp-store an 8×8 accumulator at `(r0, c0)` (2 store requests: one
    /// per accumulator register).
    pub fn store_acc(&mut self, ctx: &mut SimContext, r0: usize, c0: usize, acc: &FragAcc) {
        ctx.counters.shared_store_requests += 2;
        ctx.record(TraceEvent::SharedStore);
        for r in 0..MMA_M {
            for c in 0..MMA_N {
                self.poke(r0 + r, c0 + c, acc.get(r, c));
            }
        }
    }

    /// Warp-wide scalar load of up to 32 contiguous elements of row `r`
    /// starting at column `c0` (1 load request). Returns the values.
    pub fn load_row_span(&self, ctx: &mut SimContext, r: usize, c0: usize, len: usize) -> Vec<f64> {
        assert!(len <= 32, "a warp loads at most 32 elements per request");
        ctx.counters.shared_load_requests += 1;
        (0..len).map(|i| self.peek(r, c0 + i)).collect()
    }

    /// Warp-wide scalar store of up to 32 contiguous elements (1 request).
    pub fn store_row_span(&mut self, ctx: &mut SimContext, r: usize, c0: usize, vals: &[f64]) {
        assert!(vals.len() <= 32);
        ctx.counters.shared_store_requests += 1;
        for (i, &v) in vals.iter().enumerate() {
            self.poke(r, c0 + i, v);
        }
    }

    #[inline]
    fn get_or_zero(&self, r: isize, c: isize) -> f64 {
        if r < 0 || c < 0 || r as usize >= self.rows || c as usize >= self.cols {
            0.0
        } else {
            self.data[r as usize * self.cols + c as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frag_loads_count_one_request_each() {
        let mut ctx = SimContext::new();
        let mut tile = SharedTile::new(16, 16);
        tile.poke(2, 3, 5.0);
        let a = tile.load_frag_a(&mut ctx, 0, 0);
        let b = tile.load_frag_b(&mut ctx, 0, 0);
        assert_eq!(ctx.counters.shared_load_requests, 2);
        assert_eq!(a.get(2, 3), 5.0);
        assert_eq!(b.get(2, 3), 5.0);
    }

    #[test]
    fn out_of_bounds_reads_zero_pad() {
        let mut ctx = SimContext::new();
        let mut tile = SharedTile::new(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                tile.poke(r, c, 1.0);
            }
        }
        let a = tile.load_frag_a(&mut ctx, -2, -2);
        // rows 0..2 / cols 0..2 of the fragment fall outside the tile.
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.get(2, 2), 1.0);
    }

    #[test]
    fn acc_store_counts_two_requests() {
        let mut ctx = SimContext::new();
        let mut tile = SharedTile::new(8, 8);
        let acc = FragAcc::from_matrix(&[[2.5; 8]; 8]);
        tile.store_acc(&mut ctx, 0, 0, &acc);
        assert_eq!(ctx.counters.shared_store_requests, 2);
        assert_eq!(tile.peek(7, 7), 2.5);
    }

    #[test]
    fn row_span_roundtrip() {
        let mut ctx = SimContext::new();
        let mut tile = SharedTile::new(2, 32);
        let vals: Vec<f64> = (0..32).map(|i| i as f64).collect();
        tile.store_row_span(&mut ctx, 1, 0, &vals);
        let back = tile.load_row_span(&mut ctx, 1, 0, 32);
        assert_eq!(back, vals);
        assert_eq!(ctx.counters.shared_load_requests, 1);
        assert_eq!(ctx.counters.shared_store_requests, 1);
    }

    #[test]
    #[should_panic]
    fn row_span_longer_than_warp_panics() {
        let mut ctx = SimContext::new();
        let tile = SharedTile::new(2, 64);
        tile.load_row_span(&mut ctx, 0, 0, 33);
    }
}

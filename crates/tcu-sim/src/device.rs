//! Device description: the public A100 parameters the paper's evaluation
//! platform exposes (§V-A), used by the roofline cost model.

/// Static description of the simulated GPU.
///
/// Defaults model the NVIDIA A100-SXM4-80GB used in the paper:
/// 108 SMs, 1.41 GHz boost clock, 19.5 TFLOPS FP64 on tensor cores,
/// 9.7 TFLOPS FP64 on CUDA cores, 1935 GB/s HBM2e bandwidth and
/// 164 KiB of usable shared memory per SM.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Boost clock in Hz.
    pub clock_hz: f64,
    /// Peak FP64 throughput of the tensor cores, FLOP/s.
    pub fp64_tensor_flops: f64,
    /// Peak FP64 throughput of the CUDA cores, FLOP/s.
    pub fp64_cuda_flops: f64,
    /// Peak FP16 throughput of the tensor cores, FLOP/s (312 TFLOPS on
    /// A100; used to model TCStencil's native precision per §V-A).
    pub fp16_tensor_flops: f64,
    /// HBM bandwidth in bytes/s.
    pub hbm_bytes_per_sec: f64,
    /// L2 cache bandwidth in bytes/s (A100: ≈5 TB/s measured).
    pub l2_bytes_per_sec: f64,
    /// Shared-memory bytes a warp-level request can deliver per SM per
    /// cycle (A100: 128 B/cycle/SM load *and* store paths).
    pub shared_bytes_per_cycle_per_sm: f64,
    /// Usable shared memory per SM in bytes (A100: up to 164 KiB
    /// configurable out of 192 KiB).
    pub shared_bytes_per_sm: u32,
    /// Maximum resident warps per SM (A100: 64).
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM (A100: 32).
    pub max_blocks_per_sm: u32,
    /// Register file size per SM in 32-bit registers (A100: 65536).
    pub registers_per_sm: u32,
}

impl DeviceSpec {
    /// The paper's evaluation platform (§V-A).
    pub fn a100() -> Self {
        DeviceSpec {
            name: "NVIDIA A100-SXM4-80GB (simulated)",
            num_sms: 108,
            clock_hz: 1.41e9,
            fp64_tensor_flops: 19.5e12,
            fp64_cuda_flops: 9.7e12,
            fp16_tensor_flops: 312.0e12,
            hbm_bytes_per_sec: 1935.0e9,
            l2_bytes_per_sec: 5.0e12,
            shared_bytes_per_cycle_per_sm: 128.0,
            shared_bytes_per_sm: 164 * 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            registers_per_sm: 65536,
        }
    }

    /// Aggregate shared-memory bandwidth across the device, bytes/s.
    pub fn shared_bandwidth(&self) -> f64 {
        self.shared_bytes_per_cycle_per_sm * self.clock_hz * self.num_sms as f64
    }

    /// Device-wide warp-instruction issue bandwidth used to cost shuffle
    /// instructions: one warp instruction per scheduler per cycle, four
    /// schedulers per SM.
    pub fn warp_issue_per_sec(&self) -> f64 {
        4.0 * self.clock_hz * self.num_sms as f64
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_constants_match_paper() {
        let d = DeviceSpec::a100();
        assert_eq!(d.num_sms, 108);
        assert_eq!(d.fp64_tensor_flops, 19.5e12);
        assert_eq!(d.hbm_bytes_per_sec, 1935.0e9);
    }

    #[test]
    fn shared_bandwidth_is_tens_of_tb() {
        let d = DeviceSpec::a100();
        let bw = d.shared_bandwidth();
        assert!(bw > 15.0e12 && bw < 25.0e12, "bw = {bw}");
    }

    #[test]
    fn fp16_is_16x_fp64_tensor() {
        // §V-A: "On the A100 TCU, FP16 computation speed is 16 times
        // faster than FP64" — the spec ratio the TCStencil conversion uses.
        let d = DeviceSpec::a100();
        assert!((d.fp16_tensor_flops / d.fp64_tensor_flops - 16.0).abs() < 1e-9);
    }
}

impl foundation::json::ToJson for DeviceSpec {
    fn to_json(&self) -> foundation::json::Json {
        use foundation::json::Json;
        Json::obj([
            ("name", Json::Str(self.name.to_string())),
            ("num_sms", Json::UInt(self.num_sms as u64)),
            ("clock_hz", Json::Num(self.clock_hz)),
            ("fp64_tensor_flops", Json::Num(self.fp64_tensor_flops)),
            ("fp64_cuda_flops", Json::Num(self.fp64_cuda_flops)),
            ("fp16_tensor_flops", Json::Num(self.fp16_tensor_flops)),
            ("hbm_bytes_per_sec", Json::Num(self.hbm_bytes_per_sec)),
            ("l2_bytes_per_sec", Json::Num(self.l2_bytes_per_sec)),
            ("shared_bytes_per_cycle_per_sm", Json::Num(self.shared_bytes_per_cycle_per_sm)),
            ("shared_bytes_per_sm", Json::UInt(self.shared_bytes_per_sm as u64)),
            ("max_warps_per_sm", Json::UInt(self.max_warps_per_sm as u64)),
            ("max_blocks_per_sm", Json::UInt(self.max_blocks_per_sm as u64)),
            ("registers_per_sm", Json::UInt(self.registers_per_sm as u64)),
        ])
    }
}

//! # tcu-sim — a functional + performance simulator of FP64 Tensor Cores
//!
//! This crate is the hardware substrate for the LoRAStencil reproduction.
//! The paper ("LoRAStencil: Low-Rank Adaptation of Stencil Computation on
//! Tensor Cores", SC 2024) runs on NVIDIA A100 Tensor Core Units through
//! the CUDA WMMA API; this crate reimplements that execution environment
//! in software so the algorithms can be reproduced and *measured* without
//! a GPU:
//!
//! * [`fragment`] — the warp-level A/B/accumulator fragments of the FP64
//!   `mma.m8n8k4` shape with the exact per-thread register layout of the
//!   real hardware (paper Fig. 6). Getting this layout right is what makes
//!   Butterfly Vector Swapping checkable rather than assumed.
//! * [`context::SimContext`] — issues MMAs, fragment extractions, scalar
//!   CUDA-core work and shuffles, charging everything to
//!   [`counters::PerfCounters`].
//! * [`shared::SharedTile`] / [`global::GlobalArray`] — the two levels of
//!   the memory hierarchy with the request/byte counters the paper reads
//!   through Nsight Compute (Fig. 10), plus `cp.async` (§IV-B).
//! * [`mod@occupancy`] — standard CUDA occupancy rules, so shared-memory
//!   footprints translate to resident-warp counts (§V-D).
//! * [`cost`] — a roofline cost model calibrated with A100 public specs
//!   that converts counters into estimated time and GStencil/s (Eq. 18).
//!
//! ## Example
//!
//! ```
//! use tcu_sim::{SimContext, SharedTile, FragAcc};
//!
//! let mut ctx = SimContext::new();
//! let mut x = SharedTile::new(16, 16);
//! x.poke(0, 0, 2.0);
//! let a = x.load_frag_a(&mut ctx, 0, 0);
//! let b = x.load_frag_b(&mut ctx, 0, 0);
//! let d = ctx.mma(&a, &b, &FragAcc::zero());
//! assert_eq!(ctx.counters.mma_ops, 1);
//! assert_eq!(d.get(0, 0), 4.0); // 2*2 from the (0,0) elements
//! ```

// Explicit index loops mirror the matrix/grid math throughout this
// crate and keep row/column roles visible; iterator forms obscure them.
#![allow(clippy::needless_range_loop)]

pub mod context;
pub mod cost;
pub mod counters;
pub mod device;
pub mod fp16;
pub mod fragment;
pub mod global;
pub mod occupancy;
pub mod shared;
pub mod trace;

pub use context::SimContext;
pub use cost::{gstencil_per_sec, CostModel, Estimate};
pub use counters::{PerfCounters, FLOPS_PER_MMA, FLOPS_PER_MMA_SP};
pub use device::DeviceSpec;
pub use fragment::{FragA, FragASp, FragAcc, FragB, MMA_K, MMA_M, MMA_N, WARP_LANES};
pub use global::{CopyMode, GlobalArray};
pub use occupancy::{occupancy, BlockResources, Occupancy};
pub use shared::SharedTile;
pub use trace::{Trace, TraceEvent};

//! Optional instruction tracing: record every operation a
//! [`SimContext`] issues, for debugging data paths and for the kind of
//! timeline inspection Nsight provides on real hardware.
//!
//! Tracing is off by default (zero overhead beyond a branch); turn it on
//! per context with [`SimContext::enable_trace`]. Events are appended in
//! issue order and can be queried or rendered as a compact listing.

use crate::context::SimContext;

/// One traced operation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An `mma.m8n8k4.f64` issue.
    Mma,
    /// A structured-sparse `mma.sp.m8n8k4.f64` issue (2:4 A operand).
    MmaSp,
    /// An `m16n16k16` FP16 MMA issue.
    Mma16,
    /// A load of `n` sparsity-metadata register sets.
    MetaLoad(u64),
    /// An accumulator→A extraction with the chosen columns and the
    /// shuffle instructions it cost (0 under BVS).
    AccExtract {
        /// Column set extracted.
        cols: [usize; 4],
        /// Shuffles charged.
        shuffles: u64,
    },
    /// A shared-memory fragment/span load.
    SharedLoad,
    /// A shared-memory store.
    SharedStore,
    /// A global→shared copy of `bytes` HBM bytes (`staged` = through
    /// registers).
    GlobalCopy {
        /// HBM bytes charged.
        bytes: u64,
        /// Whether the copy staged through the register file.
        staged: bool,
    },
    /// Scalar CUDA-core work.
    CudaFlops(u64),
    /// Explicit warp shuffles outside extraction.
    Shuffles(u64),
}

/// A recorded trace.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// All events in issue order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Longest run of consecutive [`TraceEvent::Mma`] issues — the MMA
    /// burst length the schedulers see (BVS exists to keep this high:
    /// shuffles in the middle of the chain break the pipeline).
    pub fn longest_mma_burst(&self) -> usize {
        let mut best = 0;
        let mut cur = 0;
        for e in &self.events {
            match e {
                TraceEvent::Mma | TraceEvent::MmaSp => {
                    cur += 1;
                    best = best.max(cur);
                }
                // fragment/metadata loads pipeline with MMAs, and a
                // zero-shuffle extraction is a pure register
                // reinterpretation (the BVS case) — none break the burst
                TraceEvent::SharedLoad
                | TraceEvent::MetaLoad(_)
                | TraceEvent::AccExtract { shuffles: 0, .. } => {}
                _ => cur = 0,
            }
        }
        best
    }

    /// Render a compact one-line-per-event listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.events.iter().enumerate() {
            let line = match e {
                TraceEvent::Mma => "mma.m8n8k4.f64".to_string(),
                TraceEvent::MmaSp => "mma.sp.m8n8k4.f64".to_string(),
                TraceEvent::Mma16 => "mma.m16n16k16.f16".to_string(),
                TraceEvent::MetaLoad(n) => format!("ld.metadata x{n}"),
                TraceEvent::AccExtract { cols, shuffles } => {
                    format!("acc->A cols {cols:?} ({shuffles} shuffles)")
                }
                TraceEvent::SharedLoad => "ld.shared (fragment/span)".to_string(),
                TraceEvent::SharedStore => "st.shared".to_string(),
                TraceEvent::GlobalCopy { bytes, staged } => format!(
                    "{} global->shared {bytes} B",
                    if *staged { "ld/st staged" } else { "cp.async" }
                ),
                TraceEvent::CudaFlops(n) => format!("cuda flops x{n}"),
                TraceEvent::Shuffles(n) => format!("shfl.sync x{n}"),
            };
            out.push_str(&format!("{i:>6}  {line}\n"));
        }
        out
    }

    pub(crate) fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }
}

impl SimContext {
    /// Begin recording a trace on this context.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::default());
    }

    /// The trace recorded so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Stop tracing and take the recorded trace.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    #[inline]
    pub(crate) fn record(&mut self, e: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{FragA, FragAcc, FragB};
    use crate::global::{CopyMode, GlobalArray};
    use crate::shared::SharedTile;

    #[test]
    fn untraced_contexts_record_nothing() {
        let mut ctx = SimContext::new();
        let a = FragA::zero();
        let b = FragB::zero();
        ctx.mma(&a, &b, &FragAcc::zero());
        assert!(ctx.trace().is_none());
    }

    #[test]
    fn traced_context_records_in_issue_order() {
        let mut ctx = SimContext::new();
        ctx.enable_trace();
        let tile = SharedTile::new(16, 16);
        let a = tile.load_frag_a(&mut ctx, 0, 0);
        let b = tile.load_frag_b(&mut ctx, 0, 0);
        let acc = ctx.mma(&a, &b, &FragAcc::zero());
        ctx.acc_to_a(&acc, FragAcc::BUTTERFLY_COLS[0]);
        ctx.acc_to_a(&acc, FragAcc::NATURAL_COLS[0]);
        let t = ctx.take_trace().unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.events()[0], TraceEvent::SharedLoad);
        assert_eq!(t.events()[2], TraceEvent::Mma);
        assert_eq!(t.events()[3], TraceEvent::AccExtract { cols: [0, 2, 4, 6], shuffles: 0 });
        assert_eq!(t.events()[4], TraceEvent::AccExtract { cols: [0, 1, 2, 3], shuffles: 2 });
        assert!(t.render().contains("mma.m8n8k4.f64"));
    }

    #[test]
    fn copies_record_mode_and_bytes() {
        let mut ctx = SimContext::new();
        ctx.enable_trace();
        let g = GlobalArray::new(8, 8);
        let mut tile = SharedTile::new(8, 8);
        g.copy_to_shared(&mut ctx, CopyMode::Staged, 0, 0, 8, 8, &mut tile, 0, 0);
        g.copy_to_shared(&mut ctx, CopyMode::Async, 0, 0, 4, 4, &mut tile, 0, 0);
        let t = ctx.take_trace().unwrap();
        assert_eq!(t.events()[0], TraceEvent::GlobalCopy { bytes: 512, staged: true });
        assert_eq!(t.events()[1], TraceEvent::GlobalCopy { bytes: 128, staged: false });
    }

    #[test]
    fn mma_burst_length_sees_through_fragment_loads() {
        let mut t = Trace::default();
        t.push(TraceEvent::Mma);
        t.push(TraceEvent::SharedLoad); // pipelines: burst continues
        t.push(TraceEvent::Mma);
        t.push(TraceEvent::AccExtract { cols: [0, 2, 4, 6], shuffles: 0 }); // BVS: free
        t.push(TraceEvent::Mma);
        t.push(TraceEvent::Shuffles(2)); // breaks the burst
        t.push(TraceEvent::Mma);
        assert_eq!(t.longest_mma_burst(), 3);
    }
}

impl foundation::json::ToJson for TraceEvent {
    fn to_json(&self) -> foundation::json::Json {
        use foundation::json::Json;
        match self {
            TraceEvent::Mma => Json::Str("Mma".into()),
            TraceEvent::MmaSp => Json::Str("MmaSp".into()),
            TraceEvent::Mma16 => Json::Str("Mma16".into()),
            TraceEvent::MetaLoad(n) => Json::obj([("MetaLoad", Json::UInt(*n))]),
            TraceEvent::SharedLoad => Json::Str("SharedLoad".into()),
            TraceEvent::SharedStore => Json::Str("SharedStore".into()),
            TraceEvent::AccExtract { cols, shuffles } => Json::obj([(
                "AccExtract",
                Json::obj([
                    ("cols", Json::Arr(cols.iter().map(|&c| Json::UInt(c as u64)).collect())),
                    ("shuffles", Json::UInt(*shuffles)),
                ]),
            )]),
            TraceEvent::GlobalCopy { bytes, staged } => Json::obj([(
                "GlobalCopy",
                Json::obj([("bytes", Json::UInt(*bytes)), ("staged", Json::Bool(*staged))]),
            )]),
            TraceEvent::CudaFlops(n) => Json::obj([("CudaFlops", Json::UInt(*n))]),
            TraceEvent::Shuffles(n) => Json::obj([("Shuffles", Json::UInt(*n))]),
        }
    }
}

impl foundation::json::ToJson for Trace {
    fn to_json(&self) -> foundation::json::Json {
        use foundation::json::Json;
        Json::obj([("events", Json::arr(self.events.iter()))])
    }
}

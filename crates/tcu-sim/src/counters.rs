//! Performance counters collected during simulated execution.
//!
//! These mirror the hardware counters the paper reads through Nsight Compute
//! (shared-memory load/store requests, Fig. 10) plus the instruction counts
//! its analytic models reason about (MMA operations, Eq. 16; shuffles,
//! Fig. 9; global traffic for the roofline / arithmetic-intensity numbers of
//! Table III).

/// FLOPs performed by one `mma.m8n8k4.f64` instruction: `2 * m * n * k`.
pub const FLOPS_PER_MMA: u64 = 2 * 8 * 8 * 4;

/// FLOPs performed by one structured-sparse `mma.sp.m8n8k4.f64`
/// instruction: the 2:4 pattern keeps two of every four K products, so
/// only `2 * m * n * k/2` multiplies and adds execute.
pub const FLOPS_PER_MMA_SP: u64 = 2 * 8 * 8 * 2;

/// Counter set accumulated by a [`crate::SimContext`].
///
/// Counters are plain integers so tile-local counter sets can be merged
/// after parallel execution (see [`PerfCounters::merge`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PerfCounters {
    /// Number of `mma.m8n8k4.f64` instructions issued to tensor cores.
    pub mma_ops: u64,
    /// Number of structured-sparse `mma.sp.m8n8k4.f64` instructions: the
    /// A operand is stored 2:4-compressed (at most two nonzeros per row of
    /// four K elements) and the tensor core skips the pruned products.
    pub mma_sp_ops: u64,
    /// Number of `m16n16k16` FP16 MMA instructions (native-FP16 methods
    /// only; 8192 FLOPs each at the FP16 peak rate).
    pub mma_fp16_ops: u64,
    /// Sparsity-metadata register loads: one per compressed A fragment
    /// brought into the metadata registers that steer a sparse MMA.
    pub metadata_loads: u64,
    /// Scalar FP64 floating-point operations executed on CUDA cores
    /// (adds and multiplies each count as one).
    pub cuda_flops: u64,
    /// Warp-wide `__shfl_sync` instructions (cross-lane data movement).
    pub shuffle_ops: u64,
    /// Warp-level shared-memory load requests.
    pub shared_load_requests: u64,
    /// Warp-level shared-memory store requests.
    pub shared_store_requests: u64,
    /// Bytes read from global memory (HBM).
    pub global_bytes_read: u64,
    /// Bytes written to global memory (HBM).
    pub global_bytes_written: u64,
    /// Halo re-read bytes served by the L2 cache rather than HBM: data a
    /// neighboring tile already pulled on-chip this iteration (A100's
    /// 40 MB L2 easily covers the row working sets of Table II).
    pub l2_bytes: u64,
    /// Bytes of global→shared copies that were staged through registers
    /// (i.e. *not* using `cp.async`). Penalized by the cost model.
    pub staged_copy_bytes: u64,
    /// Grid points whose stencil update completed.
    pub points_updated: u64,
}

impl PerfCounters {
    /// A fresh, all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total FP64 FLOPs executed on tensor cores (dense + sparse MMAs).
    pub fn tensor_flops(&self) -> u64 {
        self.mma_ops * FLOPS_PER_MMA + self.mma_sp_ops * FLOPS_PER_MMA_SP
    }

    /// Total FP16 FLOPs executed on tensor cores.
    pub fn tensor_fp16_flops(&self) -> u64 {
        self.mma_fp16_ops * crate::fp16::FLOPS_PER_MMA16
    }

    /// Total FLOPs across tensor (both precisions) and CUDA cores.
    pub fn total_flops(&self) -> u64 {
        self.tensor_flops() + self.tensor_fp16_flops() + self.cuda_flops
    }

    /// Total warp-level shared-memory requests (loads + stores), the
    /// quantity Fig. 10 of the paper plots as "total requests".
    pub fn shared_total_requests(&self) -> u64 {
        self.shared_load_requests + self.shared_store_requests
    }

    /// Total global-memory traffic in bytes.
    pub fn global_bytes(&self) -> u64 {
        self.global_bytes_read + self.global_bytes_written
    }

    /// Arithmetic intensity in FLOP per global byte (Table III "AI").
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.global_bytes();
        if bytes == 0 {
            return 0.0;
        }
        self.total_flops() as f64 / bytes as f64
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &PerfCounters) {
        self.mma_ops += other.mma_ops;
        self.mma_sp_ops += other.mma_sp_ops;
        self.mma_fp16_ops += other.mma_fp16_ops;
        self.metadata_loads += other.metadata_loads;
        self.cuda_flops += other.cuda_flops;
        self.shuffle_ops += other.shuffle_ops;
        self.shared_load_requests += other.shared_load_requests;
        self.shared_store_requests += other.shared_store_requests;
        self.global_bytes_read += other.global_bytes_read;
        self.global_bytes_written += other.global_bytes_written;
        self.l2_bytes += other.l2_bytes;
        self.staged_copy_bytes += other.staged_copy_bytes;
        self.points_updated += other.points_updated;
    }

    /// `(name, value)` view of every counter field, in declaration order.
    /// The single source of truth for field-by-field comparison and
    /// reporting (adding a field here keeps [`PerfCounters::diff`] exact).
    pub fn fields(&self) -> [(&'static str, u64); 13] {
        [
            ("mma_ops", self.mma_ops),
            ("mma_sp_ops", self.mma_sp_ops),
            ("mma_fp16_ops", self.mma_fp16_ops),
            ("metadata_loads", self.metadata_loads),
            ("cuda_flops", self.cuda_flops),
            ("shuffle_ops", self.shuffle_ops),
            ("shared_load_requests", self.shared_load_requests),
            ("shared_store_requests", self.shared_store_requests),
            ("global_bytes_read", self.global_bytes_read),
            ("global_bytes_written", self.global_bytes_written),
            ("l2_bytes", self.l2_bytes),
            ("staged_copy_bytes", self.staged_copy_bytes),
            ("points_updated", self.points_updated),
        ]
    }

    /// Exact field-by-field comparison: every `(field, self, other)`
    /// triple where the two counter sets disagree, in declaration order.
    /// Empty means the sets are identical.
    pub fn diff(&self, other: &PerfCounters) -> Vec<(&'static str, u64, u64)> {
        self.fields()
            .iter()
            .zip(other.fields())
            .filter(|((_, a), (_, b))| a != b)
            .map(|(&(name, a), (_, b))| (name, a, b))
            .collect()
    }

    /// Scale every counter by an integer factor.
    ///
    /// Used to extrapolate from one representative tile (simulated exactly)
    /// to a full problem consisting of `factor` identical tiles.
    pub fn scaled(&self, factor: u64) -> PerfCounters {
        PerfCounters {
            mma_ops: self.mma_ops * factor,
            mma_sp_ops: self.mma_sp_ops * factor,
            mma_fp16_ops: self.mma_fp16_ops * factor,
            metadata_loads: self.metadata_loads * factor,
            cuda_flops: self.cuda_flops * factor,
            shuffle_ops: self.shuffle_ops * factor,
            shared_load_requests: self.shared_load_requests * factor,
            shared_store_requests: self.shared_store_requests * factor,
            global_bytes_read: self.global_bytes_read * factor,
            global_bytes_written: self.global_bytes_written * factor,
            l2_bytes: self.l2_bytes * factor,
            staged_copy_bytes: self.staged_copy_bytes * factor,
            points_updated: self.points_updated * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_per_mma_matches_m8n8k4() {
        assert_eq!(FLOPS_PER_MMA, 512);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = PerfCounters::new();
        a.mma_ops = 1;
        a.mma_sp_ops = 12;
        a.mma_fp16_ops = 11;
        a.metadata_loads = 13;
        a.cuda_flops = 2;
        a.shuffle_ops = 3;
        a.shared_load_requests = 4;
        a.shared_store_requests = 5;
        a.global_bytes_read = 6;
        a.global_bytes_written = 7;
        a.l2_bytes = 10;
        a.staged_copy_bytes = 8;
        a.points_updated = 9;
        let mut b = a;
        b.merge(&a);
        assert_eq!(b, a.scaled(2));
    }

    #[test]
    fn tensor_flops_counts_512_per_mma() {
        let mut c = PerfCounters::new();
        c.mma_ops = 3;
        assert_eq!(c.tensor_flops(), 1536);
        c.cuda_flops = 64;
        assert_eq!(c.total_flops(), 1600);
    }

    #[test]
    fn sparse_mma_counts_256_flops_each() {
        let mut c = PerfCounters::new();
        c.mma_sp_ops = 2;
        assert_eq!(c.tensor_flops(), 512);
        c.mma_ops = 1;
        assert_eq!(c.tensor_flops(), 1024);
    }

    #[test]
    fn arithmetic_intensity_zero_without_traffic() {
        let mut c = PerfCounters::new();
        c.mma_ops = 10;
        assert_eq!(c.arithmetic_intensity(), 0.0);
        c.global_bytes_read = 512;
        c.global_bytes_written = 512;
        assert!((c.arithmetic_intensity() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn diff_reports_exact_disagreements() {
        let mut a = PerfCounters::new();
        a.mma_ops = 5;
        a.shared_load_requests = 8;
        let mut b = a;
        assert!(a.diff(&b).is_empty());
        b.shared_load_requests = 9;
        b.points_updated = 64;
        assert_eq!(a.diff(&b), vec![("shared_load_requests", 8, 9), ("points_updated", 0, 64)]);
    }

    #[test]
    fn fields_covers_every_counter() {
        // a counter set with all-distinct values round-trips through
        // fields(): any field missed there would break this sum
        let c = PerfCounters {
            mma_ops: 1,
            mma_sp_ops: 2,
            mma_fp16_ops: 4,
            metadata_loads: 8,
            cuda_flops: 16,
            shuffle_ops: 32,
            shared_load_requests: 64,
            shared_store_requests: 128,
            global_bytes_read: 256,
            global_bytes_written: 512,
            l2_bytes: 1024,
            staged_copy_bytes: 2048,
            points_updated: 4096,
        };
        let sum: u64 = c.fields().iter().map(|(_, v)| v).sum();
        assert_eq!(sum, 8191);
    }

    #[test]
    fn scaled_by_zero_clears() {
        let mut c = PerfCounters::new();
        c.mma_ops = 7;
        assert_eq!(c.scaled(0), PerfCounters::new());
    }
}

impl foundation::json::ToJson for PerfCounters {
    fn to_json(&self) -> foundation::json::Json {
        use foundation::json::Json;
        Json::obj([
            ("mma_ops", Json::UInt(self.mma_ops)),
            ("mma_sp_ops", Json::UInt(self.mma_sp_ops)),
            ("mma_fp16_ops", Json::UInt(self.mma_fp16_ops)),
            ("metadata_loads", Json::UInt(self.metadata_loads)),
            ("cuda_flops", Json::UInt(self.cuda_flops)),
            ("shuffle_ops", Json::UInt(self.shuffle_ops)),
            ("shared_load_requests", Json::UInt(self.shared_load_requests)),
            ("shared_store_requests", Json::UInt(self.shared_store_requests)),
            ("global_bytes_read", Json::UInt(self.global_bytes_read)),
            ("global_bytes_written", Json::UInt(self.global_bytes_written)),
            ("l2_bytes", Json::UInt(self.l2_bytes)),
            ("staged_copy_bytes", Json::UInt(self.staged_copy_bytes)),
            ("points_updated", Json::UInt(self.points_updated)),
        ])
    }
}

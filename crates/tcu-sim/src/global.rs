//! Simulated global memory (HBM): flat FP64 arrays with byte-level traffic
//! accounting and the Ampere `cp.async` global→shared copy path (§IV-B).

use crate::context::SimContext;
use crate::shared::SharedTile;
use crate::trace::TraceEvent;

/// How a global→shared copy is staged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyMode {
    /// Classic copy: data traverses global → registers → shared. Occupies
    /// intermediate registers; the cost model charges the staged bytes.
    Staged,
    /// Ampere `cp.async`: data bypasses the register file.
    Async,
}

/// A 2-D array resident in simulated global memory.
///
/// 1-D problems use `rows == 1`; 3-D problems store one `GlobalArray` per
/// plane or use row-major `(z*ny + y, x)` flattening at the caller.
#[derive(Debug, Clone)]
pub struct GlobalArray {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl GlobalArray {
    /// Allocate a zeroed `rows × cols` array.
    ///
    /// # Panics
    ///
    /// Panics with a typed message when `rows × cols` overflows `usize`
    /// or either extent exceeds `isize::MAX` (the periodic-halo wrap in
    /// [`GlobalArray::copy_to_shared`] indexes through `isize`, so a
    /// larger extent would silently wrap negative).
    pub fn new(rows: usize, cols: usize) -> Self {
        let n = Self::checked_extent(rows, cols);
        GlobalArray { rows, cols, data: vec![0.0; n] }
    }

    /// Build from an existing row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), Self::checked_extent(rows, cols));
        GlobalArray { rows, cols, data }
    }

    /// Validate extents: the product must fit `usize` and each extent
    /// must fit `isize` (torus indexing range). Returns `rows * cols`.
    fn checked_extent(rows: usize, cols: usize) -> usize {
        assert!(
            isize::try_from(rows).is_ok() && isize::try_from(cols).is_ok(),
            "global array extent {rows}x{cols} exceeds the isize indexing range"
        );
        rows.checked_mul(cols).expect("global array extent rows*cols overflows usize")
    }

    /// Array height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the row-major backing buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the row-major backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Host-side element read (no traffic charged).
    #[inline]
    pub fn peek(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Host-side element write (no traffic charged).
    #[inline]
    pub fn poke(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Copy a `h × w` window with top-left `(r0, c0)` into `dst` at
    /// `(dr0, dc0)`, charging global reads, shared stores and (for
    /// [`CopyMode::Staged`]) register staging. Out-of-range source
    /// coordinates wrap periodically (torus halo), matching the grid
    /// boundary convention of `stencil-core`.
    #[allow(clippy::too_many_arguments)]
    pub fn copy_to_shared(
        &self,
        ctx: &mut SimContext,
        mode: CopyMode,
        r0: isize,
        c0: isize,
        h: usize,
        w: usize,
        dst: &mut SharedTile,
        dr0: usize,
        dc0: usize,
    ) {
        // rows wrap individually; columns take a contiguous fast path
        // when the whole window is horizontally in-bounds (the common,
        // interior-tile case — no per-element division)
        let cols_in_range = c0 >= 0 && c0 as usize + w <= self.cols;
        for dr in 0..h {
            let r = (r0 + dr as isize).rem_euclid(self.rows as isize) as usize;
            let base = r * self.cols;
            if cols_in_range {
                let c = c0 as usize;
                dst.write_row(dr0 + dr, dc0, &self.data[base + c..base + c + w]);
            } else {
                // periodic wrap: the window's columns are at most
                // ⌈w / cols⌉ + 1 contiguous source runs — copy runs
                // instead of doing per-element modular arithmetic (macro
                // tile windows wrap on every job, so this is hot)
                let mut dc = 0;
                while dc < w {
                    let c = (c0 + dc as isize).rem_euclid(self.cols as isize) as usize;
                    let run = (self.cols - c).min(w - dc);
                    dst.write_row(dr0 + dr, dc0 + dc, &self.data[base + c..base + c + run]);
                    dc += run;
                }
            }
        }
        ctx.counters.global_bytes_read += (h * w * 8) as u64;
        // One store request per warp-width (32 elements) of copied data.
        let elems = (h * w) as u64;
        ctx.counters.shared_store_requests += elems.div_ceil(32);
        if mode == CopyMode::Staged {
            ctx.counters.staged_copy_bytes += (h * w * 8) as u64;
        }
        ctx.record(TraceEvent::GlobalCopy {
            bytes: (h * w * 8) as u64,
            staged: mode == CopyMode::Staged,
        });
    }

    /// Like [`GlobalArray::copy_to_shared`], but only `fresh_elems` of the
    /// copied elements are charged to HBM; the rest are halo re-reads a
    /// neighboring tile already brought on-chip this iteration, charged to
    /// the L2 pool instead. Callers pass the tile's compulsory share
    /// (its own output footprint), so grid-wide HBM traffic sums to one
    /// compulsory pass — matching how the A100's 40 MB L2 serves halo
    /// overlap between adjacent thread blocks.
    #[allow(clippy::too_many_arguments)]
    pub fn copy_to_shared_reuse(
        &self,
        ctx: &mut SimContext,
        mode: CopyMode,
        r0: isize,
        c0: isize,
        h: usize,
        w: usize,
        dst: &mut SharedTile,
        dr0: usize,
        dc0: usize,
        fresh_elems: usize,
    ) {
        let fresh = fresh_elems.min(h * w);
        self.copy_to_shared(ctx, mode, r0, c0, h, w, dst, dr0, dc0);
        let halo_bytes = ((h * w - fresh) * 8) as u64;
        ctx.counters.global_bytes_read -= halo_bytes;
        ctx.counters.l2_bytes += halo_bytes;
    }

    /// Write a `h × w` window from shared memory back to global memory at
    /// `(r0, c0)`, charging global writes and shared loads.
    #[allow(clippy::too_many_arguments)]
    pub fn store_from_shared(
        &mut self,
        ctx: &mut SimContext,
        src: &SharedTile,
        sr0: usize,
        sc0: usize,
        h: usize,
        w: usize,
        r0: usize,
        c0: usize,
    ) {
        for dr in 0..h {
            for dc in 0..w {
                self.poke(r0 + dr, c0 + dc, src.peek(sr0 + dr, sc0 + dc));
            }
        }
        let elems = (h * w) as u64;
        ctx.counters.global_bytes_written += elems * 8;
        ctx.counters.shared_load_requests += elems.div_ceil(32);
    }

    /// Direct warp read of `len ≤ 32` contiguous elements (one coalesced
    /// transaction), used by CUDA-core baselines that skip shared memory.
    pub fn load_span(&self, ctx: &mut SimContext, r: usize, c0: usize, len: usize) -> Vec<f64> {
        let mut out = vec![0.0; len];
        self.load_span_into(ctx, r, c0, &mut out);
        out
    }

    /// Allocation-free [`GlobalArray::load_span`]: fills `dst` (whose
    /// length is the span length) instead of returning a fresh `Vec`.
    pub fn load_span_into(&self, ctx: &mut SimContext, r: usize, c0: usize, dst: &mut [f64]) {
        assert!(dst.len() <= 32);
        ctx.counters.global_bytes_read += (dst.len() * 8) as u64;
        let base = r * self.cols + c0;
        dst.copy_from_slice(&self.data[base..base + dst.len()]);
    }

    /// Direct warp read of `len ≤ 32` contiguous elements that a prior
    /// pass already brought on-chip: charged to the L2 pool, not HBM.
    pub fn load_span_cached(
        &self,
        ctx: &mut SimContext,
        r: usize,
        c0: usize,
        len: usize,
    ) -> Vec<f64> {
        let mut out = vec![0.0; len];
        self.load_span_cached_into(ctx, r, c0, &mut out);
        out
    }

    /// Allocation-free [`GlobalArray::load_span_cached`].
    pub fn load_span_cached_into(
        &self,
        ctx: &mut SimContext,
        r: usize,
        c0: usize,
        dst: &mut [f64],
    ) {
        assert!(dst.len() <= 32);
        ctx.counters.l2_bytes += (dst.len() * 8) as u64;
        let base = r * self.cols + c0;
        dst.copy_from_slice(&self.data[base..base + dst.len()]);
    }

    /// Direct warp write of `len ≤ 32` contiguous elements.
    pub fn store_span(&mut self, ctx: &mut SimContext, r: usize, c0: usize, vals: &[f64]) {
        assert!(vals.len() <= 32);
        ctx.counters.global_bytes_written += (vals.len() * 8) as u64;
        for (i, &v) in vals.iter().enumerate() {
            self.poke(r, c0 + i, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_to_shared_charges_reads_and_stores() {
        let mut ctx = SimContext::new();
        let mut g = GlobalArray::new(8, 8);
        g.poke(1, 1, 3.0);
        let mut tile = SharedTile::new(8, 8);
        g.copy_to_shared(&mut ctx, CopyMode::Async, 0, 0, 8, 8, &mut tile, 0, 0);
        assert_eq!(tile.peek(1, 1), 3.0);
        assert_eq!(ctx.counters.global_bytes_read, 64 * 8);
        assert_eq!(ctx.counters.shared_store_requests, 2); // 64 elems / 32
        assert_eq!(ctx.counters.staged_copy_bytes, 0);
    }

    #[test]
    fn staged_copy_charges_staging_bytes() {
        let mut ctx = SimContext::new();
        let g = GlobalArray::new(4, 8);
        let mut tile = SharedTile::new(4, 8);
        g.copy_to_shared(&mut ctx, CopyMode::Staged, 0, 0, 4, 8, &mut tile, 0, 0);
        assert_eq!(ctx.counters.staged_copy_bytes, 32 * 8);
    }

    #[test]
    fn halo_outside_array_wraps_periodically() {
        let mut ctx = SimContext::new();
        let mut g = GlobalArray::new(4, 4);
        g.poke(3, 3, 7.0);
        g.poke(0, 0, 1.0);
        let mut tile = SharedTile::new(6, 6);
        g.copy_to_shared(&mut ctx, CopyMode::Async, -1, -1, 6, 6, &mut tile, 0, 0);
        // tile (0,0) ← global (-1,-1) wraps to (3,3)
        assert_eq!(tile.peek(0, 0), 7.0);
        assert_eq!(tile.peek(1, 1), 1.0);
        // tile (5,5) ← global (4,4) wraps to (0,0)
        assert_eq!(tile.peek(5, 5), 1.0);
        assert_eq!(ctx.counters.global_bytes_read, 36 * 8);
    }

    #[test]
    fn halo_reuse_splits_hbm_and_l2() {
        let mut ctx = SimContext::new();
        let g = GlobalArray::new(16, 16);
        let mut tile = SharedTile::new(16, 16);
        g.copy_to_shared_reuse(&mut ctx, CopyMode::Async, -3, -3, 16, 16, &mut tile, 0, 0, 64);
        assert_eq!(ctx.counters.global_bytes_read, 64 * 8);
        assert_eq!(ctx.counters.l2_bytes, (256 - 64) * 8);
    }

    #[test]
    fn cached_span_charges_l2_only() {
        let mut ctx = SimContext::new();
        let g = GlobalArray::new(2, 32);
        let v = g.load_span_cached(&mut ctx, 1, 0, 8);
        assert_eq!(v.len(), 8);
        assert_eq!(ctx.counters.global_bytes_read, 0);
        assert_eq!(ctx.counters.l2_bytes, 64);
    }

    #[test]
    fn writeback_roundtrip() {
        let mut ctx = SimContext::new();
        let mut g = GlobalArray::new(8, 8);
        let mut tile = SharedTile::new(8, 8);
        tile.poke(0, 0, 9.0);
        g.store_from_shared(&mut ctx, &tile, 0, 0, 4, 4, 2, 2);
        assert_eq!(g.peek(2, 2), 9.0);
        assert_eq!(ctx.counters.global_bytes_written, 16 * 8);
    }

    #[test]
    fn span_ops_charge_bytes() {
        let mut ctx = SimContext::new();
        let mut g = GlobalArray::new(1, 64);
        g.store_span(&mut ctx, 0, 0, &[1.0; 32]);
        let v = g.load_span(&mut ctx, 0, 16, 16);
        assert_eq!(v, vec![1.0; 16]);
        assert_eq!(ctx.counters.global_bytes_written, 256);
        assert_eq!(ctx.counters.global_bytes_read, 128);
    }
}

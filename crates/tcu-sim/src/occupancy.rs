//! SM occupancy calculation.
//!
//! The paper's memory argument (§III-B) is not only about request counts:
//! ConvStencil's stencil2row matrices "occupy more shared memory, reducing
//! the maximum number of threads that can work simultaneously and thus
//! lowering the hardware occupancy" (§V-D). This module reproduces the
//! standard CUDA occupancy rules so that shared-memory footprints feed the
//! cost model the same way.

use crate::device::DeviceSpec;

/// Resource usage of one thread block.
#[derive(Debug, Clone, Copy)]
pub struct BlockResources {
    /// Shared-memory bytes allocated per block.
    pub shared_bytes: u32,
    /// Threads per block.
    pub threads: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
}

/// Result of an occupancy computation.
#[derive(Debug, Clone, Copy)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// `warps_per_sm / max_warps_per_sm` ∈ (0, 1].
    pub fraction: f64,
}

/// Compute achievable occupancy for a block shape on a device.
///
/// Returns the minimum over the four standard limiters: max blocks/SM,
/// shared memory, register file and warp slots. Blocks that fit nowhere
/// (e.g. shared allocation larger than an SM) yield zero occupancy.
pub fn occupancy(device: &DeviceSpec, block: &BlockResources) -> Occupancy {
    let warps_per_block = block.threads.div_ceil(32).max(1);

    let by_blocks = device.max_blocks_per_sm;
    let by_warps = device.max_warps_per_sm / warps_per_block;
    let by_shared = device.shared_bytes_per_sm.checked_div(block.shared_bytes).unwrap_or(u32::MAX);
    let regs_per_block = block.regs_per_thread.saturating_mul(block.threads).max(1);
    let by_regs = device.registers_per_sm / regs_per_block;

    let blocks = by_blocks.min(by_warps).min(by_shared).min(by_regs);
    let warps = blocks * warps_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        fraction: warps as f64 / device.max_warps_per_sm as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> DeviceSpec {
        DeviceSpec::a100()
    }

    #[test]
    fn small_block_hits_block_limit() {
        let occ = occupancy(
            &a100(),
            &BlockResources { shared_bytes: 0, threads: 32, regs_per_thread: 32 },
        );
        assert_eq!(occ.blocks_per_sm, 32);
        assert_eq!(occ.warps_per_sm, 32);
        assert!((occ.fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits_blocks() {
        // 40 KiB/block → only 4 blocks fit in 164 KiB.
        let occ = occupancy(
            &a100(),
            &BlockResources { shared_bytes: 40 * 1024, threads: 256, regs_per_thread: 32 },
        );
        assert_eq!(occ.blocks_per_sm, 4);
        assert_eq!(occ.warps_per_sm, 32);
    }

    #[test]
    fn register_pressure_limits_blocks() {
        // 255 regs/thread × 256 threads = 65280 regs ≈ whole file → 1 block.
        let occ = occupancy(
            &a100(),
            &BlockResources { shared_bytes: 0, threads: 256, regs_per_thread: 255 },
        );
        assert_eq!(occ.blocks_per_sm, 1);
    }

    #[test]
    fn oversized_block_gets_zero() {
        let occ = occupancy(
            &a100(),
            &BlockResources { shared_bytes: 200 * 1024, threads: 256, regs_per_thread: 32 },
        );
        assert_eq!(occ.blocks_per_sm, 0);
        assert_eq!(occ.fraction, 0.0);
    }

    #[test]
    fn more_shared_means_no_more_occupancy() {
        let lo = occupancy(
            &a100(),
            &BlockResources { shared_bytes: 8 * 1024, threads: 256, regs_per_thread: 64 },
        );
        let hi = occupancy(
            &a100(),
            &BlockResources { shared_bytes: 32 * 1024, threads: 256, regs_per_thread: 64 },
        );
        assert!(hi.fraction <= lo.fraction);
    }
}

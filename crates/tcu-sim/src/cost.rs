//! Roofline-style cost model mapping simulated counters to estimated
//! execution time and GStencil/s on the modeled A100.
//!
//! The model has five throughput pools — tensor cores, CUDA cores, shared
//! memory, HBM, and the warp-shuffle/issue pipeline — plus an occupancy
//! term. Execution time is the slowest pool (they overlap on hardware)
//! plus the *exposed* shuffle time: the paper's Fig. 9 shows shuffles are
//! dependency stalls in the middle of the MMA chain, which do not overlap
//! (removing them with BVS yielded 4.00×), so shuffle time is additive.
//!
//! Absolute times are a model; the comparisons (who wins, by what factor)
//! are driven by counter ratios, which the simulator measures exactly.

use crate::counters::PerfCounters;
use crate::device::DeviceSpec;
use crate::occupancy::{occupancy, BlockResources, Occupancy};

/// Bytes moved by one warp-level FP64 shared-memory request
/// (32 lanes × 8 bytes).
pub const BYTES_PER_SHARED_REQUEST: f64 = 256.0;

/// Tunable model parameters (defaults calibrated against the paper's
/// reported breakdown and speedups; see `EXPERIMENTS.md`).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Device the counters are mapped onto.
    pub device: DeviceSpec,
    /// Extra HBM-time fraction charged per staged (non-`cp.async`) byte:
    /// register round-trips serialize with the copy and burn issue slots
    /// (calibrated so removing them reproduces the paper's 29.7 % gain
    /// from `cp.async`, §IV-B / Fig. 9).
    pub staging_overhead: f64,
    /// Exposed cycles per shuffle instruction (issue + dependency stall
    /// of the consuming MMA).
    pub shuffle_exposed_cycles: f64,
    /// Occupancy fraction needed to fully hide memory latency; below
    /// this, effective bandwidth degrades linearly.
    pub latency_saturation_occupancy: f64,
    /// Fixed fraction of peak actually achievable by well-tuned kernels
    /// (no real kernel reaches 100% of spec sheet numbers).
    pub achievable_fraction: f64,
}

impl CostModel {
    /// Model of the paper's A100 platform.
    pub fn a100() -> Self {
        CostModel {
            device: DeviceSpec::a100(),
            staging_overhead: 0.65,
            shuffle_exposed_cycles: 66.0,
            latency_saturation_occupancy: 0.33,
            achievable_fraction: 0.70,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::a100()
    }
}

/// Per-pool time breakdown produced by [`CostModel::estimate`].
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    /// FP64 tensor-core compute time, s.
    pub t_tensor: f64,
    /// FP16 tensor-core compute time, s.
    pub t_tensor16: f64,
    /// CUDA-core compute time, s.
    pub t_cuda: f64,
    /// Shared-memory traffic time, s.
    pub t_shared: f64,
    /// L2 halo-reuse traffic time, s.
    pub t_l2: f64,
    /// Global-memory (HBM) traffic time, s (includes staging overhead).
    pub t_hbm: f64,
    /// Exposed shuffle time, s (additive).
    pub t_shuffle: f64,
    /// Occupancy used for latency hiding.
    pub occupancy: f64,
    /// Total estimated execution time, s.
    pub total: f64,
}

impl Estimate {
    /// GStencil/s (Eq. 18 of the paper) given the points the counter set
    /// updated.
    pub fn gstencil_per_sec(&self, points_updated: u64) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        points_updated as f64 / self.total / 1e9
    }

    /// "Compute (SM) Throughput" à la Nsight (Table III): the busiest
    /// compute pipeline's share of total time, discounted by issue
    /// utilization — below ~32 resident warps per SM the schedulers
    /// cannot keep the pipes fed, which is how low occupancy shows up in
    /// the hardware counter.
    pub fn compute_throughput(&self) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        let issue = (self.occupancy / 0.5).min(1.0);
        (self.t_tensor.max(self.t_tensor16).max(self.t_cuda) / self.total).min(1.0) * issue
    }
}

impl CostModel {
    /// Estimate execution time for a counter set produced by a kernel
    /// launched with the given per-block resources.
    pub fn estimate(&self, counters: &PerfCounters, block: &BlockResources) -> Estimate {
        let occ: Occupancy = occupancy(&self.device, block);
        let occ_frac = occ.fraction.max(1e-6);
        // Latency-hiding factor: bandwidth pools degrade below the
        // saturation occupancy.
        let hide = (occ_frac / self.latency_saturation_occupancy).min(1.0);
        let d = &self.device;
        let peak = self.achievable_fraction;

        let t_tensor = counters.tensor_flops() as f64 / (d.fp64_tensor_flops * peak);
        let t_tensor16 = counters.tensor_fp16_flops() as f64 / (d.fp16_tensor_flops * peak);
        let t_cuda = counters.cuda_flops as f64 / (d.fp64_cuda_flops * peak);
        let t_shared = counters.shared_total_requests() as f64 * BYTES_PER_SHARED_REQUEST
            / (d.shared_bandwidth() * peak * hide);
        let hbm_bytes = counters.global_bytes() as f64
            + counters.staged_copy_bytes as f64 * self.staging_overhead;
        let t_hbm = hbm_bytes / (d.hbm_bytes_per_sec * peak.min(0.85) * hide);
        let t_l2 = counters.l2_bytes as f64 / (d.l2_bytes_per_sec * peak * hide);
        let t_shuffle = counters.shuffle_ops as f64 * self.shuffle_exposed_cycles
            / (d.warp_issue_per_sec() * occ_frac.clamp(0.05, 1.0));

        let total =
            t_tensor.max(t_tensor16).max(t_cuda).max(t_shared).max(t_hbm).max(t_l2) + t_shuffle;
        Estimate {
            t_tensor,
            t_tensor16,
            t_cuda,
            t_shared,
            t_l2,
            t_hbm,
            t_shuffle,
            occupancy: occ.fraction,
            total,
        }
    }
}

/// Convenience: GStencil/s for a counter set (Eq. 18).
pub fn gstencil_per_sec(model: &CostModel, counters: &PerfCounters, block: &BlockResources) -> f64 {
    model.estimate(counters, block).gstencil_per_sec(counters.points_updated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> BlockResources {
        BlockResources { shared_bytes: 4096, threads: 256, regs_per_thread: 64 }
    }

    #[test]
    fn more_mmas_take_longer() {
        let m = CostModel::a100();
        let mut a = PerfCounters::new();
        a.mma_ops = 1_000_000;
        let mut b = a;
        b.mma_ops *= 2;
        assert!(m.estimate(&b, &block()).total > m.estimate(&a, &block()).total);
    }

    #[test]
    fn shuffles_are_additive() {
        let m = CostModel::a100();
        let mut base = PerfCounters::new();
        base.mma_ops = 1_000_000;
        base.shared_load_requests = 1_000_000;
        let t0 = m.estimate(&base, &block()).total;
        let mut shuf = base;
        shuf.shuffle_ops = 2_000_000;
        let t1 = m.estimate(&shuf, &block()).total;
        assert!(t1 > t0, "shuffles must expose extra time");
    }

    #[test]
    fn staging_penalizes_hbm() {
        let m = CostModel::a100();
        let mut a = PerfCounters::new();
        a.global_bytes_read = 1 << 30;
        let t_async = m.estimate(&a, &block()).t_hbm;
        a.staged_copy_bytes = a.global_bytes_read;
        let t_staged = m.estimate(&a, &block()).t_hbm;
        assert!(t_staged > t_async * 1.2);
    }

    #[test]
    fn low_occupancy_degrades_bandwidth() {
        let m = CostModel::a100();
        let mut c = PerfCounters::new();
        c.global_bytes_read = 1 << 30;
        let good = BlockResources { shared_bytes: 4096, threads: 256, regs_per_thread: 64 };
        let bad = BlockResources { shared_bytes: 120 * 1024, threads: 256, regs_per_thread: 64 };
        assert!(m.estimate(&c, &bad).t_hbm > m.estimate(&c, &good).t_hbm);
    }

    #[test]
    fn gstencil_uses_points() {
        let m = CostModel::a100();
        let mut c = PerfCounters::new();
        c.mma_ops = 1_000_000;
        c.points_updated = 1_000_000_000;
        let e = m.estimate(&c, &block());
        let g = e.gstencil_per_sec(c.points_updated);
        assert!(g > 0.0);
        assert!((g - 1.0 / e.total).abs() / g < 1e-9);
    }

    #[test]
    fn compute_throughput_bounded() {
        let m = CostModel::a100();
        let mut c = PerfCounters::new();
        c.mma_ops = 123456;
        c.shared_load_requests = 10;
        let e = m.estimate(&c, &block());
        let ct = e.compute_throughput();
        assert!(ct > 0.0 && ct <= 1.0);
    }
}

impl foundation::json::ToJson for CostModel {
    fn to_json(&self) -> foundation::json::Json {
        use foundation::json::Json;
        Json::obj([
            ("device", self.device.to_json()),
            ("staging_overhead", Json::Num(self.staging_overhead)),
            ("shuffle_exposed_cycles", Json::Num(self.shuffle_exposed_cycles)),
            ("latency_saturation_occupancy", Json::Num(self.latency_saturation_occupancy)),
            ("achievable_fraction", Json::Num(self.achievable_fraction)),
        ])
    }
}

impl foundation::json::ToJson for Estimate {
    fn to_json(&self) -> foundation::json::Json {
        use foundation::json::Json;
        Json::obj([
            ("t_tensor", Json::Num(self.t_tensor)),
            ("t_tensor16", Json::Num(self.t_tensor16)),
            ("t_cuda", Json::Num(self.t_cuda)),
            ("t_shared", Json::Num(self.t_shared)),
            ("t_l2", Json::Num(self.t_l2)),
            ("t_hbm", Json::Num(self.t_hbm)),
            ("t_shuffle", Json::Num(self.t_shuffle)),
            ("occupancy", Json::Num(self.occupancy)),
            ("total", Json::Num(self.total)),
        ])
    }
}

//! Strong-scaling model: per-step time = slowest device's modeled compute
//! time plus the NVLink halo exchange, giving speedup and parallel
//! efficiency against the single-device run.

use crate::exec::DistributedOutcome;
use tcu_sim::CostModel;

/// NVLink 3.0 per-direction bandwidth on an A100 (bytes/s).
pub const NVLINK_BYTES_PER_SEC: f64 = 300.0e9;

/// Achievable fraction of NVLink peak for small halo messages.
pub const NVLINK_EFFICIENCY: f64 = 0.8;

/// Fixed per-step neighbor-synchronization latency, seconds (NVLink
/// peer sync, not a global barrier).
pub const EXCHANGE_LATENCY_S: f64 = 1.0e-6;

/// Strong-scaling figures for one distributed run.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Device count.
    pub devices: usize,
    /// Modeled wall time for the whole run, s.
    pub time: f64,
    /// Modeled throughput over the logical updates, GStencil/s.
    pub gstencil: f64,
}

/// Model the run time of a distributed outcome. Devices run
/// concurrently (take the slowest); halo transfers overlap with interior
/// compute, as production stencil codes arrange, so only the larger of
/// the two is paid — plus an unavoidable per-step neighbor sync.
pub fn model_run(
    outcome: &DistributedOutcome,
    model: &CostModel,
    logical_updates: u64,
) -> ScalingPoint {
    let compute = outcome
        .per_device
        .iter()
        .map(|c| model.estimate(c, &outcome.block).total)
        .fold(0.0f64, f64::max);
    let per_device_halo = outcome.nvlink_bytes as f64 / outcome.per_device.len() as f64;
    let transfer = per_device_halo / (NVLINK_BYTES_PER_SEC * NVLINK_EFFICIENCY);
    let time = compute.max(transfer) + EXCHANGE_LATENCY_S * outcome.applies as f64;
    ScalingPoint {
        devices: outcome.per_device.len(),
        time,
        gstencil: logical_updates as f64 / time / 1e9,
    }
}

/// Parallel efficiency of `point` against the 1-device baseline.
pub fn efficiency(baseline: &ScalingPoint, point: &ScalingPoint) -> f64 {
    (baseline.time / point.time) / point.devices as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_distributed;
    use lorastencil::ExecConfig;
    use stencil_core::{kernels, Grid2D};

    #[test]
    fn scaling_improves_with_devices_then_efficiency_decays() {
        let grid = Grid2D::from_fn(512, 512, |r, c| ((r * 7 + c * 3) % 13) as f64 * 0.3);
        let model = CostModel::a100();
        let kernel = kernels::box_2d49p();
        let logical = (512 * 512 * 4) as u64;
        let points: Vec<ScalingPoint> = [1usize, 2, 4, 8]
            .iter()
            .map(|&d| {
                let o = run_distributed(&kernel, &grid, 4, d, ExecConfig::full());
                model_run(&o, &model, logical)
            })
            .collect();
        // throughput grows with device count…
        for w in points.windows(2) {
            assert!(w[1].gstencil > w[0].gstencil, "{:?}", points);
        }
        // …but efficiency is sub-linear (halo overhead + ghost recompute)
        let base = points[0];
        for p in &points[1..] {
            let e = efficiency(&base, p);
            assert!(e < 1.0, "superlinear? {e}");
            assert!(e > 0.3, "collapsed: {e}");
        }
    }

    #[test]
    fn exchange_cost_scales_with_halo_bytes() {
        let grid = Grid2D::from_fn(64, 64, |r, c| (r + c) as f64);
        let model = CostModel::a100();
        let small = run_distributed(&kernels::heat_2d(), &grid, 3, 2, ExecConfig::full());
        let big = run_distributed(&kernels::box_2d49p(), &grid, 3, 2, ExecConfig::full());
        // radius-3 halos move more data than the fused heat kernel's…
        // (both exchange radius 3 after fusion, so compare bytes directly)
        assert!(big.nvlink_bytes >= small.nvlink_bytes / 2);
        let ps = model_run(&small, &model, 1);
        let pb = model_run(&big, &model, 1);
        assert!(ps.time > 0.0 && pb.time > 0.0);
    }
}

//! Slab decomposition: split a 2-D grid into row bands, one per device,
//! aligned to the executor's 8-row tile so per-tile arithmetic (and hence
//! the result) is identical to the single-device run.

/// One device's slab: rows `[start, start + len)` of the global grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slab {
    /// First global row owned by this device.
    pub start: usize,
    /// Number of owned rows.
    pub len: usize,
}

/// Tile alignment of slab boundaries (the executor's output tile height).
pub const ALIGN: usize = 8;

/// Partition `rows` into `devices` contiguous slabs, each a multiple of
/// [`ALIGN`] rows (except possibly the last), as balanced as possible.
///
/// Panics if there are fewer than `ALIGN` rows per device on average —
/// a degenerate configuration no scaling study would run.
pub fn partition(rows: usize, devices: usize) -> Vec<Slab> {
    assert!(devices >= 1);
    assert!(
        rows >= ALIGN * devices,
        "{rows} rows cannot feed {devices} devices with {ALIGN}-row tiles"
    );
    let tiles = rows.div_ceil(ALIGN);
    let base = tiles / devices;
    let extra = tiles % devices;
    let mut out = Vec::with_capacity(devices);
    let mut start = 0;
    for d in 0..devices {
        let t = base + usize::from(d < extra);
        let len = (t * ALIGN).min(rows - start);
        out.push(Slab { start, len });
        start += len;
    }
    debug_assert_eq!(start, rows);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_exactly_once() {
        for (rows, devices) in [(64, 4), (96, 3), (100, 2), (72, 5), (8, 1)] {
            let slabs = partition(rows, devices);
            assert_eq!(slabs.len(), devices);
            let mut next = 0;
            for s in &slabs {
                assert_eq!(s.start, next);
                assert!(s.len > 0);
                next += s.len;
            }
            assert_eq!(next, rows, "{rows}x{devices}");
        }
    }

    #[test]
    fn interior_boundaries_are_tile_aligned() {
        for (rows, devices) in [(100, 3), (64, 4), (88, 2)] {
            let slabs = partition(rows, devices);
            for s in &slabs[..slabs.len() - 1] {
                assert_eq!((s.start + s.len) % ALIGN, 0, "{rows}x{devices}");
            }
        }
    }

    #[test]
    fn is_balanced_within_one_tile() {
        let slabs = partition(1024, 7);
        let min = slabs.iter().map(|s| s.len).min().unwrap();
        let max = slabs.iter().map(|s| s.len).max().unwrap();
        assert!(max - min <= ALIGN);
    }

    #[test]
    #[should_panic]
    fn rejects_starved_devices() {
        partition(16, 4);
    }
}

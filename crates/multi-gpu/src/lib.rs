//! # multi-gpu — distributed LoRAStencil
//!
//! An extension beyond the paper's single-GPU scope: slab decomposition
//! of 2-D grids across multiple simulated A100s with periodic halo
//! exchange over NVLink, and a strong-scaling model on top of the same
//! counters/cost machinery as the single-device evaluation.
//!
//! Correctness is strict: ghost padding is tile-aligned so every device
//! reproduces exactly the tiles of the single-device run — the
//! distributed result is bit-identical, not approximately equal
//! (asserted in tests).
//!
//! ```
//! use multi_gpu::{run_distributed, model_run};
//! use lorastencil::ExecConfig;
//! use stencil_core::{kernels, Grid2D};
//!
//! let grid = Grid2D::from_fn(64, 64, |r, c| (r + c) as f64);
//! let out = run_distributed(&kernels::box_2d9p(), &grid, 3, 2, ExecConfig::full());
//! assert_eq!(out.per_device.len(), 2);
//! assert!(out.nvlink_bytes > 0);
//! ```

pub mod exec;
pub mod partition;
pub mod scaling;

pub use exec::{run_distributed, DistributedLoRa, DistributedOutcome};
pub use partition::{partition, Slab};
pub use scaling::{efficiency, model_run, ScalingPoint};

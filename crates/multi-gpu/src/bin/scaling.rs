//! Strong-scaling study: LoRAStencil across 1–8 simulated A100s on the
//! Table II 2-D workloads.

use lorastencil::ExecConfig;
use multi_gpu::{efficiency, model_run, run_distributed};
use stencil_core::{kernels, Grid2D};
use tcu_sim::CostModel;

fn main() {
    let model = CostModel::a100();
    let iters = 6;
    println!("Strong scaling — LoRAStencil, slab decomposition + NVLink halo exchange\n");
    for kernel in [kernels::box_2d9p(), kernels::star_2d13p(), kernels::box_2d49p()] {
        let grid = Grid2D::from_fn(1024, 512, |r, c| ((r * 31 + c * 17) % 23) as f64 * 0.2);
        let logical = (grid.len() * iters) as u64;
        println!("{} ({} iterations on 1024x512):", kernel.name, iters);
        println!("{:>9}  {:>12}  {:>12}  {:>10}", "devices", "GStencil/s", "speedup", "efficiency");
        let mut base = None;
        for d in [1usize, 2, 4, 8] {
            let o = run_distributed(&kernel, &grid, iters, d, ExecConfig::full());
            let p = model_run(&o, &model, logical);
            let b = *base.get_or_insert(p);
            println!(
                "{:>9}  {:>12.1}  {:>11.2}x  {:>9.0}%",
                d,
                p.gstencil,
                b.time / p.time,
                100.0 * efficiency(&b, &p)
            );
        }
        println!();
    }
}

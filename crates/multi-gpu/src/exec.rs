//! Distributed LoRAStencil execution: each simulated device owns a row
//! slab plus ghost rows, advances it locally with the single-device
//! executor (a double-buffered grid pair driven through a per-device
//! [`Workspace`]), and exchanges halos with its ring neighbors over
//! NVLink after every (possibly fused) application.
//!
//! Ghost padding is rounded up to the 8-row tile so every device's local
//! tiling aligns with the global tiling — making the distributed result
//! **bit-identical** to the single-device run, not merely close: the same
//! tiles accumulate the same partial sums in the same order.

use crate::partition::{partition, Slab, ALIGN};
use lorastencil::{ExecConfig, Plan, Workspace};
use stencil_core::{
    ExecError, ExecOutcome, Grid2D, GridData, Problem, StencilExecutor, StencilKernel,
};
use tcu_sim::{BlockResources, GlobalArray, PerfCounters};

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The reassembled global grid after all iterations.
    pub output: Grid2D,
    /// Per-device counters (includes the ghost-tile recompute overhead —
    /// the surface-to-volume cost real distributed stencils pay).
    pub per_device: Vec<PerfCounters>,
    /// Total bytes moved over NVLink (all devices, all exchanges).
    pub nvlink_bytes: u64,
    /// Number of grid applications (fused steps count once).
    pub applies: usize,
    /// Per-block resources of the executor plan (for the cost model).
    pub block: BlockResources,
}

/// One device's state: its slab plus `pad` ghost rows on each side.
struct Device {
    slab: Slab,
    /// Tile-aligned ghost depth (≥ the kernel's exec radius).
    pad: usize,
    /// Local grid: `pad + slab.len + pad` rows × full width.
    local: GlobalArray,
    /// Ping-pong partner of `local`, swapped after each application.
    next: GlobalArray,
}

/// Gather `count` rows starting at global row `start` (periodic) from
/// the authoritative slab owners.
fn gather_rows(
    devices: &[Device],
    rows: usize,
    cols: usize,
    start: isize,
    count: usize,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(count * cols);
    for dr in 0..count {
        let gr = (start + dr as isize).rem_euclid(rows as isize) as usize;
        let owner = devices
            .iter()
            .find(|d| gr >= d.slab.start && gr < d.slab.start + d.slab.len)
            .expect("every row has an owner");
        let lr = owner.pad + (gr - owner.slab.start);
        for c in 0..cols {
            out.push(owner.local.peek(lr, c));
        }
    }
    out
}

/// Refresh every device's ghost rows from its neighbors. Returns the
/// bytes that crossed NVLink (only the `needed` rows per side are sent;
/// the alignment padding beyond them feeds discarded outputs and is left
/// stale).
fn exchange_halos(devices: &mut [Device], rows: usize, cols: usize, needed: usize) -> u64 {
    let _halo = foundation::obs::span("halo_exchange");
    // snapshot-gather to keep the borrow checker and the ring symmetric
    let fetch: Vec<(Vec<f64>, Vec<f64>)> = devices
        .iter()
        .map(|d| {
            let top =
                gather_rows(devices, rows, cols, d.slab.start as isize - needed as isize, needed);
            let bottom =
                gather_rows(devices, rows, cols, (d.slab.start + d.slab.len) as isize, needed);
            (top, bottom)
        })
        .collect();
    let mut bytes = 0u64;
    for (d, (top, bottom)) in devices.iter_mut().zip(fetch) {
        let pad = d.pad;
        for dr in 0..needed {
            for c in 0..cols {
                d.local.poke(pad - needed + dr, c, top[dr * cols + c]);
                d.local.poke(pad + d.slab.len + dr, c, bottom[dr * cols + c]);
            }
        }
        bytes += 2 * (needed * cols * 8) as u64;
    }
    bytes
}

/// Run `iterations` steps of `kernel` over `grid` on `num_devices`
/// simulated A100s.
pub fn run_distributed(
    kernel: &StencilKernel,
    grid: &Grid2D,
    iterations: usize,
    num_devices: usize,
    config: ExecConfig,
) -> DistributedOutcome {
    assert_eq!(kernel.dims(), 2, "the distributed executor covers 2-D kernels");
    let (rows, cols) = (grid.rows(), grid.cols());
    let plan = Plan::new(kernel, config);
    let unfused = Plan::new(kernel, ExecConfig { allow_fusion: false, ..config });
    let full = iterations / plan.fusion;
    let rem = iterations % plan.fusion;

    let slabs = partition(rows, num_devices);
    let mut devices: Vec<Device> = slabs
        .iter()
        .map(|&slab| {
            // ghost depth: the deepest radius any plan needs, tile-aligned
            let g = plan.exec_kernel.radius.max(unfused.exec_kernel.radius);
            let pad = stencil_core::tiling::ghost_extent(g, ALIGN);
            let mut local = GlobalArray::new(pad + slab.len + pad, cols);
            for r in 0..slab.len {
                for c in 0..cols {
                    local.poke(pad + r, c, grid.at(slab.start + r, c));
                }
            }
            let next = GlobalArray::new(pad + slab.len + pad, cols);
            Device { slab, pad, local, next }
        })
        .collect();

    let mut per_device = vec![PerfCounters::new(); num_devices];
    let mut nvlink_bytes = 0u64;
    let mut applies = 0usize;

    // Per-(device, plan) workspaces: tilings differ per device (slabs may
    // have different row counts) and weight fragments differ per plan.
    // The device loop is sequential — the scalable axis is the tile
    // parallelism inside `Workspace::apply` — and each device
    // ping-pongs its local grid pair, so the steady-state loop allocates
    // nothing.
    let mut ws_fused: Vec<Workspace> =
        devices.iter().map(|d| Workspace::new(&plan, &[d.local.rows(), cols])).collect();
    let mut ws_unfused: Vec<Workspace> = if rem > 0 {
        devices.iter().map(|d| Workspace::new(&unfused, &[d.local.rows(), cols])).collect()
    } else {
        Vec::new()
    };

    let step = |devices: &mut Vec<Device>,
                per_device: &mut Vec<PerfCounters>,
                nvlink: &mut u64,
                p: &Plan,
                ws: &mut [Workspace]| {
        *nvlink += exchange_halos(devices, rows, cols, p.exec_kernel.radius);
        for ((d, w), pc) in devices.iter_mut().zip(ws).zip(per_device.iter_mut()) {
            let _device_apply = foundation::obs::span("device_apply");
            let c = w.apply(&d.local, &mut d.next);
            std::mem::swap(&mut d.local, &mut d.next);
            pc.merge(&c);
        }
    };

    for _ in 0..full {
        step(&mut devices, &mut per_device, &mut nvlink_bytes, &plan, &mut ws_fused);
        applies += 1;
    }
    for _ in 0..rem {
        step(&mut devices, &mut per_device, &mut nvlink_bytes, &unfused, &mut ws_unfused);
        applies += 1;
    }

    let mut output = Grid2D::new(rows, cols);
    for d in &devices {
        for r in 0..d.slab.len {
            for c in 0..cols {
                output.set(d.slab.start + r, c, d.local.peek(d.pad + r, c));
            }
        }
    }
    DistributedOutcome { output, per_device, nvlink_bytes, applies, block: plan.block_resources() }
}

/// [`run_distributed`] behind the common [`StencilExecutor`] interface,
/// so verification harnesses can drive the multi-device path exactly like
/// any single-device executor. 2-D only (like the distributed runner);
/// the reported counters are the merged per-device totals, which include
/// the ghost-recompute overhead.
#[derive(Debug, Clone)]
pub struct DistributedLoRa {
    /// Simulated device count.
    pub num_devices: usize,
    /// Feature toggles forwarded to every device's plan.
    pub config: ExecConfig,
}

impl DistributedLoRa {
    /// Full configuration on `num_devices` devices.
    pub fn new(num_devices: usize) -> Self {
        assert!(num_devices >= 1, "need at least one device");
        DistributedLoRa { num_devices, config: ExecConfig::full() }
    }
}

impl StencilExecutor for DistributedLoRa {
    fn name(&self) -> &'static str {
        // `name` returns a static string, so the common device counts get
        // distinct labels and the rest share one
        match self.num_devices {
            1 => "LoRAStencil-dist1",
            2 => "LoRAStencil-dist2",
            3 => "LoRAStencil-dist3",
            4 => "LoRAStencil-dist4",
            _ => "LoRAStencil-distN",
        }
    }

    fn execute(&self, problem: &Problem) -> Result<ExecOutcome, ExecError> {
        let GridData::D2(grid) = &problem.input else {
            return Err(ExecError::Unsupported("the distributed executor covers 2-D grids".into()));
        };
        if problem.kernel.dims() != 2 {
            return Err(ExecError::Invalid("kernel/grid dimensionality mismatch".into()));
        }
        if grid.rows() < self.num_devices * ALIGN {
            // partition() requires one ALIGN-row tile per device
            return Err(ExecError::Unsupported(format!(
                "{} rows cannot feed {} devices with {ALIGN}-row tiles",
                grid.rows(),
                self.num_devices
            )));
        }
        let d = run_distributed(
            &problem.kernel,
            grid,
            problem.iterations,
            self.num_devices,
            self.config,
        );
        let mut counters = PerfCounters::new();
        for c in &d.per_device {
            counters.merge(c);
        }
        Ok(ExecOutcome { output: GridData::D2(d.output), counters, block: d.block })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::kernels;

    fn wavy(rows: usize, cols: usize) -> Grid2D {
        Grid2D::from_fn(rows, cols, |r, c| {
            (r as f64 * 0.3).sin() * 2.0 + (c as f64 * 0.21).cos() + ((r * 13 + c) % 5) as f64 * 0.2
        })
    }

    fn single_device(kernel: &StencilKernel, grid: &Grid2D, iters: usize) -> Grid2D {
        let p = Problem::new(kernel.clone(), grid.clone(), iters);
        let out = lorastencil::LoRaStencil::new().execute(&p).unwrap();
        let GridData::D2(g) = out.output else { unreachable!() };
        g
    }

    #[test]
    fn distributed_is_bit_identical_to_single_device() {
        let grid = wavy(96, 48);
        for kernel in [kernels::box_2d9p(), kernels::star_2d13p()] {
            let want = single_device(&kernel, &grid, 6);
            for devices in [2usize, 3, 4] {
                let got = run_distributed(&kernel, &grid, 6, devices, ExecConfig::full());
                assert_eq!(
                    got.output.as_slice(),
                    want.as_slice(),
                    "{} on {devices} devices must be bit-identical",
                    kernel.name
                );
            }
        }
    }

    #[test]
    fn fused_kernels_exchange_deeper_halos() {
        let grid = wavy(64, 32);
        // Box-2D9P fuses 3×: exec radius 3 → 3 rows per side per exchange
        let d = run_distributed(&kernels::box_2d9p(), &grid, 3, 2, ExecConfig::full());
        assert_eq!(d.applies, 1);
        assert_eq!(d.nvlink_bytes, 2 * 2 * (3 * 32 * 8) as u64);
        // unfused: 3 applies × 1-row halos
        let cfg = ExecConfig { allow_fusion: false, ..ExecConfig::full() };
        let d = run_distributed(&kernels::box_2d9p(), &grid, 3, 2, cfg);
        assert_eq!(d.applies, 3);
        assert_eq!(d.nvlink_bytes, 3 * 2 * 2 * (32 * 8) as u64);
    }

    #[test]
    fn remainder_iterations_run_unfused() {
        let grid = wavy(64, 32);
        let want = single_device(&kernels::box_2d9p(), &grid, 5);
        let got = run_distributed(&kernels::box_2d9p(), &grid, 5, 2, ExecConfig::full());
        assert_eq!(got.applies, 1 + 2); // one fused (3 steps) + two unfused
        let diff: f64 = got
            .output
            .as_slice()
            .iter()
            .zip(want.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-12, "diff = {diff}");
    }

    #[test]
    fn per_device_counters_cover_ghost_overhead() {
        let grid = wavy(64, 64);
        let d = run_distributed(&kernels::box_2d49p(), &grid, 1, 2, ExecConfig::full());
        let total: u64 = d.per_device.iter().map(|c| c.points_updated).sum();
        // each device computes its slab (32 rows) plus 2×8 aligned ghost
        // rows of discarded outputs: the surface-to-volume overhead
        assert_eq!(total, 2 * (32 + 16) * 64);
        assert!(d.per_device.iter().all(|c| c.mma_ops > 0));
    }

    #[test]
    fn single_device_run_has_no_nvlink_traffic_to_itself() {
        // degenerate 1-device "ring": the halo is its own wrap; we still
        // count the copy (it models the periodic wrap buffer), and the
        // result must match the plain executor
        let grid = wavy(32, 32);
        let want = single_device(&kernels::heat_2d(), &grid, 2);
        let got = run_distributed(&kernels::heat_2d(), &grid, 2, 1, ExecConfig::full());
        assert_eq!(got.output.as_slice(), want.as_slice());
    }

    #[test]
    fn executor_wrapper_matches_run_distributed() {
        let grid = wavy(48, 40);
        let exec = DistributedLoRa::new(3);
        let p = Problem::new(kernels::box_2d9p(), grid.clone(), 4);
        let out = exec.execute(&p).unwrap();
        let direct = run_distributed(&kernels::box_2d9p(), &grid, 4, 3, ExecConfig::full());
        assert_eq!(out.output.as_slice(), direct.output.as_slice());
        let mut merged = PerfCounters::new();
        for c in &direct.per_device {
            merged.merge(c);
        }
        assert_eq!(out.counters.mma_ops, merged.mma_ops);
        assert_eq!(out.counters.points_updated, merged.points_updated);
        assert_eq!(exec.name(), "LoRAStencil-dist3");
    }

    #[test]
    fn executor_wrapper_rejects_non_2d() {
        let exec = DistributedLoRa::new(2);
        let p =
            Problem::new(kernels::heat_1d(), stencil_core::Grid1D::from_fn(64, |i| i as f64), 1);
        assert!(exec.execute(&p).is_err());
    }
}

//! Distributed LoRAStencil execution: each simulated device owns a row
//! slab plus ghost rows, advances it locally with the single-device
//! executor (a double-buffered grid pair driven through a per-device
//! [`Workspace`]), and exchanges halos with its ring neighbors over
//! NVLink after every (possibly fused) application.
//!
//! Ghost padding is rounded up to the 8-row tile so every device's local
//! tiling aligns with the global tiling — making the distributed result
//! **bit-identical** to the single-device run, not merely close: the same
//! tiles accumulate the same partial sums in the same order.

use crate::partition::{partition, Slab, ALIGN};
use lorastencil::checkpoint::{plan_fingerprint, CkptRunError};
use lorastencil::{ExecConfig, Plan, Workspace};
use stencil_core::checkpoint::{CheckpointStore, Plane, Snapshot, FLAG_SEEDED_INPUT};
use stencil_core::{
    ExecError, ExecOutcome, Grid2D, GridData, Problem, StencilExecutor, StencilKernel,
};
use tcu_sim::{BlockResources, GlobalArray, PerfCounters};

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The reassembled global grid after all iterations.
    pub output: Grid2D,
    /// Per-device counters (includes the ghost-tile recompute overhead —
    /// the surface-to-volume cost real distributed stencils pay).
    pub per_device: Vec<PerfCounters>,
    /// Total bytes moved over NVLink (all devices, all exchanges).
    pub nvlink_bytes: u64,
    /// Number of grid applications (fused steps count once).
    pub applies: usize,
    /// Per-block resources of the executor plan (for the cost model).
    pub block: BlockResources,
}

/// One device's state: its slab plus `pad` ghost rows on each side.
struct Device {
    slab: Slab,
    /// Tile-aligned ghost depth (≥ the kernel's exec radius).
    pad: usize,
    /// Local grid: `pad + slab.len + pad` rows × full width.
    local: GlobalArray,
    /// Ping-pong partner of `local`, swapped after each application.
    next: GlobalArray,
}

/// Gather `count` rows starting at global row `start` (periodic) from
/// the authoritative slab owners.
fn gather_rows(
    devices: &[Device],
    rows: usize,
    cols: usize,
    start: isize,
    count: usize,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(count * cols);
    for dr in 0..count {
        let gr = (start + dr as isize).rem_euclid(rows as isize) as usize;
        let owner = devices
            .iter()
            .find(|d| gr >= d.slab.start && gr < d.slab.start + d.slab.len)
            .expect("every row has an owner");
        let lr = owner.pad + (gr - owner.slab.start);
        for c in 0..cols {
            out.push(owner.local.peek(lr, c));
        }
    }
    out
}

/// Refresh every device's ghost rows from its neighbors. Returns the
/// bytes that crossed NVLink (only the `needed` rows per side are sent;
/// the alignment padding beyond them feeds discarded outputs and is left
/// stale).
fn exchange_halos(devices: &mut [Device], rows: usize, cols: usize, needed: usize) -> u64 {
    let _halo = foundation::obs::span("halo_exchange");
    // snapshot-gather to keep the borrow checker and the ring symmetric
    let fetch: Vec<(Vec<f64>, Vec<f64>)> = devices
        .iter()
        .map(|d| {
            let top =
                gather_rows(devices, rows, cols, d.slab.start as isize - needed as isize, needed);
            let bottom =
                gather_rows(devices, rows, cols, (d.slab.start + d.slab.len) as isize, needed);
            (top, bottom)
        })
        .collect();
    let mut bytes = 0u64;
    for (d, (top, bottom)) in devices.iter_mut().zip(fetch) {
        let pad = d.pad;
        for dr in 0..needed {
            for c in 0..cols {
                d.local.poke(pad - needed + dr, c, top[dr * cols + c]);
                d.local.poke(pad + d.slab.len + dr, c, bottom[dr * cols + c]);
            }
        }
        bytes += 2 * (needed * cols * 8) as u64;
    }
    bytes
}

/// Reassemble the authoritative slabs (ghost rows excluded) into the
/// global grid — one *consistent* view: callers only invoke this between
/// applications, when every device has completed the same step.
fn gather_global(devices: &[Device], rows: usize, cols: usize) -> Grid2D {
    let mut output = Grid2D::new(rows, cols);
    for d in devices {
        for r in 0..d.slab.len {
            for c in 0..cols {
                output.set(d.slab.start + r, c, d.local.peek(d.pad + r, c));
            }
        }
    }
    output
}

/// Checkpointing policy for [`run_distributed_checkpointed`] /
/// [`resume_distributed`].
pub struct DistCkptPolicy<'a> {
    /// The snapshot directory + retention ring.
    pub store: &'a CheckpointStore,
    /// Snapshot whenever the step counter crosses a multiple of this.
    pub every: u64,
    /// Input-generation seed recorded in the snapshot.
    pub seed: u64,
}

/// Run `iterations` steps of `kernel` over `grid` on `num_devices`
/// simulated A100s.
pub fn run_distributed(
    kernel: &StencilKernel,
    grid: &Grid2D,
    iterations: usize,
    num_devices: usize,
    config: ExecConfig,
) -> DistributedOutcome {
    run_inner(kernel, grid, 0, iterations as u64, num_devices, config, PerfCounters::new(), None)
        .expect("no checkpoint policy, so no I/O can fail")
        .0
}

/// [`run_distributed`] with periodic crash-consistent snapshots: after
/// each application that crosses a multiple of `policy.every`, the
/// device shards are gathered into one consistent global [`Snapshot`]
/// (same format, same [`plan_fingerprint`], as the single-device path —
/// distributed execution is bit-identical, so a snapshot taken here can
/// be resumed on one device or many). Returns the outcome and how many
/// snapshots were written.
pub fn run_distributed_checkpointed(
    kernel: &StencilKernel,
    grid: &Grid2D,
    iterations: usize,
    num_devices: usize,
    config: ExecConfig,
    policy: &DistCkptPolicy,
) -> Result<(DistributedOutcome, usize), CkptRunError> {
    run_inner(
        kernel,
        grid,
        0,
        iterations as u64,
        num_devices,
        config,
        PerfCounters::new(),
        Some(policy),
    )
}

/// Resume a recovered snapshot on `num_devices` devices and run to
/// `snap.steps_total`. Rejects a fingerprint mismatch exactly like the
/// single-device [`lorastencil::checkpoint::resume`]; the device count
/// is deliberately *not* part of the fingerprint (distributed execution
/// is bit-identical, so a snapshot may be resumed on any device count).
pub fn resume_distributed(
    kernel: &StencilKernel,
    snap: &Snapshot,
    num_devices: usize,
    config: ExecConfig,
    policy: &DistCkptPolicy,
) -> Result<(DistributedOutcome, usize), CkptRunError> {
    let computed = plan_fingerprint(kernel, config, &snap.extents);
    if computed != snap.fingerprint {
        return Err(CkptRunError::FingerprintMismatch {
            stored: snap.fingerprint,
            computed,
            snapshot_identity: format!(
                "kernel {:?}, config {:?}, size {:?}",
                snap.kernel, snap.config, snap.extents
            ),
        });
    }
    if snap.step >= snap.steps_total {
        return Err(CkptRunError::StepBeyondTotal { step: snap.step, total: snap.steps_total });
    }
    let [rows, cols] = snap.extents[..] else {
        return Err(CkptRunError::FingerprintMismatch {
            stored: snap.fingerprint,
            computed,
            snapshot_identity: format!(
                "{}-D snapshot; the distributed executor covers 2-D grids",
                snap.extents.len()
            ),
        });
    };
    let grid = Grid2D::from_vec(rows, cols, snap.planes[0].data.clone());
    run_inner(
        kernel,
        &grid,
        snap.step,
        snap.steps_total,
        num_devices,
        config,
        snap.counters,
        Some(policy),
    )
}

/// The shared distributed time loop: step from `start_step` to `total`,
/// optionally snapshotting gathered global state per `policy`.
#[allow(clippy::too_many_arguments)]
fn run_inner(
    kernel: &StencilKernel,
    grid: &Grid2D,
    start_step: u64,
    total: u64,
    num_devices: usize,
    config: ExecConfig,
    start_counters: PerfCounters,
    policy: Option<&DistCkptPolicy>,
) -> Result<(DistributedOutcome, usize), CkptRunError> {
    assert_eq!(kernel.dims(), 2, "the distributed executor covers 2-D kernels");
    let iterations = (total - start_step) as usize;
    let (rows, cols) = (grid.rows(), grid.cols());
    let plan = Plan::new(kernel, config);
    let unfused = Plan::new(kernel, ExecConfig { allow_fusion: false, ..config });
    let full = iterations / plan.fusion;
    let rem = iterations % plan.fusion;

    let slabs = partition(rows, num_devices);
    let mut devices: Vec<Device> = slabs
        .iter()
        .map(|&slab| {
            // ghost depth: the deepest radius any plan needs, tile-aligned
            let g = plan.exec_kernel.radius.max(unfused.exec_kernel.radius);
            let pad = stencil_core::tiling::ghost_extent(g, ALIGN);
            let mut local = GlobalArray::new(pad + slab.len + pad, cols);
            for r in 0..slab.len {
                for c in 0..cols {
                    local.poke(pad + r, c, grid.at(slab.start + r, c));
                }
            }
            let next = GlobalArray::new(pad + slab.len + pad, cols);
            Device { slab, pad, local, next }
        })
        .collect();

    let mut per_device = vec![PerfCounters::new(); num_devices];
    let mut nvlink_bytes = 0u64;
    let mut applies = 0usize;

    // Per-(device, plan) workspaces: tilings differ per device (slabs may
    // have different row counts) and weight fragments differ per plan.
    // The device loop is sequential — the scalable axis is the tile
    // parallelism inside `Workspace::apply` — and each device
    // ping-pongs its local grid pair, so the steady-state loop allocates
    // nothing.
    let mut ws_fused: Vec<Workspace> =
        devices.iter().map(|d| Workspace::new(&plan, &[d.local.rows(), cols])).collect();
    let mut ws_unfused: Vec<Workspace> = if rem > 0 {
        devices.iter().map(|d| Workspace::new(&unfused, &[d.local.rows(), cols])).collect()
    } else {
        Vec::new()
    };

    let step = |devices: &mut Vec<Device>,
                per_device: &mut Vec<PerfCounters>,
                nvlink: &mut u64,
                p: &Plan,
                ws: &mut [Workspace]| {
        *nvlink += exchange_halos(devices, rows, cols, p.exec_kernel.radius);
        for ((d, w), pc) in devices.iter_mut().zip(ws).zip(per_device.iter_mut()) {
            let _device_apply = foundation::obs::span("device_apply");
            let c = w.apply(&d.local, &mut d.next);
            std::mem::swap(&mut d.local, &mut d.next);
            pc.merge(&c);
        }
    };

    let fingerprint = plan_fingerprint(kernel, config, &[rows, cols]);
    let snapshot = |devices: &[Device], step: u64, pre: &[PerfCounters]| {
        let mut counters = start_counters;
        for c in pre {
            counters.merge(c);
        }
        let global = gather_global(devices, rows, cols);
        Snapshot {
            flags: FLAG_SEEDED_INPUT,
            fingerprint,
            step,
            steps_total: total,
            every: policy.map(|p| p.every).unwrap_or(0),
            seed: policy.map(|p| p.seed).unwrap_or(0),
            rng: [0; 4],
            kernel: kernel.name.clone(),
            config: config.tag(),
            method: format!("LoRAStencil-dist{num_devices}"),
            extents: vec![rows, cols],
            counters,
            planes: vec![Plane { rows, cols, data: global.as_slice().to_vec() }],
        }
    };

    let mut step_no = start_step;
    let mut written = 0usize;
    let mut checkpoint = |devices: &[Device],
                          per_device: &[PerfCounters],
                          step_no: &mut u64,
                          advance: u64|
     -> Result<(), CkptRunError> {
        let crossed =
            policy.map(|p| (*step_no + advance) / p.every > *step_no / p.every).unwrap_or(false);
        *step_no += advance;
        if crossed {
            let p = policy.expect("crossed implies a policy");
            p.store.save(&snapshot(devices, *step_no, per_device)).map_err(CkptRunError::Io)?;
            written += 1;
        }
        Ok(())
    };

    for _ in 0..full {
        step(&mut devices, &mut per_device, &mut nvlink_bytes, &plan, &mut ws_fused);
        applies += 1;
        checkpoint(&devices, &per_device, &mut step_no, plan.fusion as u64)?;
    }
    for _ in 0..rem {
        step(&mut devices, &mut per_device, &mut nvlink_bytes, &unfused, &mut ws_unfused);
        applies += 1;
        checkpoint(&devices, &per_device, &mut step_no, 1)?;
    }

    let output = gather_global(&devices, rows, cols);
    Ok((
        DistributedOutcome {
            output,
            per_device,
            nvlink_bytes,
            applies,
            block: plan.block_resources(),
        },
        written,
    ))
}

/// [`run_distributed`] behind the common [`StencilExecutor`] interface,
/// so verification harnesses can drive the multi-device path exactly like
/// any single-device executor. 2-D only (like the distributed runner);
/// the reported counters are the merged per-device totals, which include
/// the ghost-recompute overhead.
#[derive(Debug, Clone)]
pub struct DistributedLoRa {
    /// Simulated device count.
    pub num_devices: usize,
    /// Feature toggles forwarded to every device's plan.
    pub config: ExecConfig,
}

impl DistributedLoRa {
    /// Full configuration on `num_devices` devices.
    pub fn new(num_devices: usize) -> Self {
        assert!(num_devices >= 1, "need at least one device");
        DistributedLoRa { num_devices, config: ExecConfig::full() }
    }
}

impl StencilExecutor for DistributedLoRa {
    fn name(&self) -> &'static str {
        // `name` returns a static string, so the common device counts get
        // distinct labels and the rest share one
        match self.num_devices {
            1 => "LoRAStencil-dist1",
            2 => "LoRAStencil-dist2",
            3 => "LoRAStencil-dist3",
            4 => "LoRAStencil-dist4",
            _ => "LoRAStencil-distN",
        }
    }

    fn execute(&self, problem: &Problem) -> Result<ExecOutcome, ExecError> {
        let GridData::D2(grid) = &problem.input else {
            return Err(ExecError::Unsupported("the distributed executor covers 2-D grids".into()));
        };
        if problem.kernel.dims() != 2 {
            return Err(ExecError::Invalid("kernel/grid dimensionality mismatch".into()));
        }
        if grid.rows() < self.num_devices * ALIGN {
            // partition() requires one ALIGN-row tile per device
            return Err(ExecError::Unsupported(format!(
                "{} rows cannot feed {} devices with {ALIGN}-row tiles",
                grid.rows(),
                self.num_devices
            )));
        }
        let d = run_distributed(
            &problem.kernel,
            grid,
            problem.iterations,
            self.num_devices,
            self.config,
        );
        let mut counters = PerfCounters::new();
        for c in &d.per_device {
            counters.merge(c);
        }
        Ok(ExecOutcome { output: GridData::D2(d.output), counters, block: d.block })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::kernels;

    fn wavy(rows: usize, cols: usize) -> Grid2D {
        Grid2D::from_fn(rows, cols, |r, c| {
            (r as f64 * 0.3).sin() * 2.0 + (c as f64 * 0.21).cos() + ((r * 13 + c) % 5) as f64 * 0.2
        })
    }

    fn single_device(kernel: &StencilKernel, grid: &Grid2D, iters: usize) -> Grid2D {
        let p = Problem::new(kernel.clone(), grid.clone(), iters);
        let out = lorastencil::LoRaStencil::new().execute(&p).unwrap();
        let GridData::D2(g) = out.output else { unreachable!() };
        g
    }

    #[test]
    fn distributed_is_bit_identical_to_single_device() {
        let grid = wavy(96, 48);
        for kernel in [kernels::box_2d9p(), kernels::star_2d13p()] {
            let want = single_device(&kernel, &grid, 6);
            for devices in [2usize, 3, 4] {
                let got = run_distributed(&kernel, &grid, 6, devices, ExecConfig::full());
                assert_eq!(
                    got.output.as_slice(),
                    want.as_slice(),
                    "{} on {devices} devices must be bit-identical",
                    kernel.name
                );
            }
        }
    }

    #[test]
    fn fused_kernels_exchange_deeper_halos() {
        let grid = wavy(64, 32);
        // Box-2D9P fuses 3×: exec radius 3 → 3 rows per side per exchange
        let d = run_distributed(&kernels::box_2d9p(), &grid, 3, 2, ExecConfig::full());
        assert_eq!(d.applies, 1);
        assert_eq!(d.nvlink_bytes, 2 * 2 * (3 * 32 * 8) as u64);
        // unfused: 3 applies × 1-row halos
        let cfg = ExecConfig { allow_fusion: false, ..ExecConfig::full() };
        let d = run_distributed(&kernels::box_2d9p(), &grid, 3, 2, cfg);
        assert_eq!(d.applies, 3);
        assert_eq!(d.nvlink_bytes, 3 * 2 * 2 * (32 * 8) as u64);
    }

    #[test]
    fn remainder_iterations_run_unfused() {
        let grid = wavy(64, 32);
        let want = single_device(&kernels::box_2d9p(), &grid, 5);
        let got = run_distributed(&kernels::box_2d9p(), &grid, 5, 2, ExecConfig::full());
        assert_eq!(got.applies, 1 + 2); // one fused (3 steps) + two unfused
        let diff: f64 = got
            .output
            .as_slice()
            .iter()
            .zip(want.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-12, "diff = {diff}");
    }

    #[test]
    fn per_device_counters_cover_ghost_overhead() {
        let grid = wavy(64, 64);
        let d = run_distributed(&kernels::box_2d49p(), &grid, 1, 2, ExecConfig::full());
        let total: u64 = d.per_device.iter().map(|c| c.points_updated).sum();
        // each device computes its slab (32 rows) plus 2×8 aligned ghost
        // rows of discarded outputs: the surface-to-volume overhead
        assert_eq!(total, 2 * (32 + 16) * 64);
        assert!(d.per_device.iter().all(|c| c.mma_ops > 0));
    }

    #[test]
    fn single_device_run_has_no_nvlink_traffic_to_itself() {
        // degenerate 1-device "ring": the halo is its own wrap; we still
        // count the copy (it models the periodic wrap buffer), and the
        // result must match the plain executor
        let grid = wavy(32, 32);
        let want = single_device(&kernels::heat_2d(), &grid, 2);
        let got = run_distributed(&kernels::heat_2d(), &grid, 2, 1, ExecConfig::full());
        assert_eq!(got.output.as_slice(), want.as_slice());
    }

    #[test]
    fn executor_wrapper_matches_run_distributed() {
        let grid = wavy(48, 40);
        let exec = DistributedLoRa::new(3);
        let p = Problem::new(kernels::box_2d9p(), grid.clone(), 4);
        let out = exec.execute(&p).unwrap();
        let direct = run_distributed(&kernels::box_2d9p(), &grid, 4, 3, ExecConfig::full());
        assert_eq!(out.output.as_slice(), direct.output.as_slice());
        let mut merged = PerfCounters::new();
        for c in &direct.per_device {
            merged.merge(c);
        }
        assert_eq!(out.counters.mma_ops, merged.mma_ops);
        assert_eq!(out.counters.points_updated, merged.points_updated);
        assert_eq!(exec.name(), "LoRAStencil-dist3");
    }

    fn store(name: &str, keep: usize) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("lorastencil-dist-ckpt-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::new(dir, keep).unwrap()
    }

    #[test]
    fn checkpointed_distributed_run_matches_plain_and_gathers_globally() {
        let grid = wavy(96, 48);
        let k = kernels::box_2d9p();
        let plain = run_distributed(&k, &grid, 9, 3, ExecConfig::full());
        let st = store("gather", 8);
        let policy = DistCkptPolicy { store: &st, every: 3, seed: 7 };
        let (out, written) =
            run_distributed_checkpointed(&k, &grid, 9, 3, ExecConfig::full(), &policy).unwrap();
        assert_eq!(out.output.as_slice(), plain.output.as_slice());
        assert_eq!(out.per_device, plain.per_device);
        assert_eq!(written, 3); // fusion 3 → boundaries at 3, 6, 9
                                // every snapshot is one consistent *global* plane, not shards
        let (snap, _) = st.load_latest_valid().unwrap();
        assert_eq!(snap.extents, vec![96, 48]);
        assert_eq!(snap.planes.len(), 1);
        assert_eq!(snap.planes[0].data, plain.output.as_slice());
        assert_eq!(snap.method, "LoRAStencil-dist3");
    }

    #[test]
    fn distributed_snapshot_resumes_on_any_device_count() {
        let grid = wavy(96, 48);
        let k = kernels::box_2d9p();
        let want = run_distributed(&k, &grid, 9, 2, ExecConfig::full());
        let st = store("resume", 8);
        let policy = DistCkptPolicy { store: &st, every: 3, seed: 7 };
        run_distributed_checkpointed(&k, &grid, 9, 2, ExecConfig::full(), &policy).unwrap();
        // resume the mid-run (step 6) snapshot on 2, 3 and 4 devices:
        // bit-identical each time, because the fingerprint covers the
        // plan, not the device count
        let mid = st
            .list()
            .unwrap()
            .into_iter()
            .find(|(s, _)| *s == 6)
            .map(|(_, p)| stencil_core::checkpoint::decode(&std::fs::read(p).unwrap()).unwrap())
            .unwrap();
        for devices in [2usize, 3, 4] {
            let st2 = store("resume-target", 8);
            let policy2 = DistCkptPolicy { store: &st2, every: 3, seed: 7 };
            let (out, _) =
                resume_distributed(&k, &mid, devices, ExecConfig::full(), &policy2).unwrap();
            assert_eq!(
                out.output.as_slice(),
                want.output.as_slice(),
                "resume on {devices} devices diverged"
            );
        }
        // and on a single device via the lorastencil resume path
        let single_st = store("resume-single", 8);
        let sp = lorastencil::checkpoint::CkptPolicy {
            store: &single_st,
            every: 3,
            seed: 7,
            method: "LoRAStencil",
        };
        let out = lorastencil::checkpoint::resume(&k, ExecConfig::full(), &mid, &sp).unwrap();
        let GridData::D2(g) = out.output else { unreachable!() };
        assert_eq!(g.as_slice(), want.output.as_slice());
    }

    #[test]
    fn distributed_resume_rejects_mismatched_plans() {
        let grid = wavy(64, 32);
        let k = kernels::box_2d9p();
        let st = store("reject", 4);
        let policy = DistCkptPolicy { store: &st, every: 3, seed: 7 };
        run_distributed_checkpointed(&k, &grid, 7, 2, ExecConfig::full(), &policy).unwrap();
        let (snap, _) = st.load_latest_valid().unwrap();
        assert_eq!(snap.step, 6);
        let err = resume_distributed(&kernels::heat_2d(), &snap, 2, ExecConfig::full(), &policy)
            .unwrap_err();
        assert!(matches!(err, CkptRunError::FingerprintMismatch { .. }));
        let cfg = ExecConfig { use_bvs: false, ..ExecConfig::full() };
        assert!(matches!(
            resume_distributed(&k, &snap, 2, cfg, &policy),
            Err(CkptRunError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn executor_wrapper_rejects_non_2d() {
        let exec = DistributedLoRa::new(2);
        let p =
            Problem::new(kernels::heat_1d(), stencil_core::Grid1D::from_fn(64, |i| i as f64), 1);
        assert!(exec.execute(&p).is_err());
    }
}

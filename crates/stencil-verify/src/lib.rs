//! # stencil-verify — differential + metamorphic verification subsystem
//!
//! Three independent engines that gate the whole reproduction:
//!
//! 1. **Differential oracle** ([`oracle`]): generate arbitrary stencil
//!    problems ([`gen::CaseGen`]) — 1-D/2-D/3-D, radius 1–4, symmetric /
//!    asymmetric / low-rank / star weights, grid extents straddling tile
//!    boundaries, 1–6 fused time steps — and run *every* registered
//!    executor (LoRAStencil in all feature configurations, the distributed
//!    executor, each baseline) against the scalar
//!    [`stencil_core::reference`] implementation. The first divergence is
//!    reported with the shrunk kernel, the seed, and a replay command.
//! 2. **Metamorphic relations** ([`metamorphic`]): linearity /
//!    superposition, translation equivariance on periodic grids, scalar
//!    scaling, `k` fused steps ≡ `k` single steps (bitwise where the
//!    ping-pong steppers guarantee it), and rank-truncation error
//!    monotonicity of the RDG decomposition.
//! 3. **Counter-exactness validator** ([`counter_model`]): the paper's
//!    Eq. 12/13/16 closed forms generalized to functions of
//!    `(h, dim, times)` and asserted **to the digit** against the measured
//!    [`tcu_sim::PerfCounters`] of every generated shape.
//! 4. **Schedule-space neutrality** ([`params_grid`]): a randomly sampled
//!    `ScheduleParams` point per generated case must stay bit-identical
//!    in values and invariant in modeled counters against the default
//!    lowering — the contract the `tune` search relies on.
//! 5. **Structural conformance** ([`conformance`]): every emitted kernel
//!    listing (CUDA / HIP / WGSL) is held accountable to the schedule it
//!    renders — balanced nesting, capability headers, every IR op's text
//!    span anchored, every constant table both declared and read.
//!
//! The engines are wired into `tests/fuzz_differential.rs` at the
//! workspace root with pinned seeds; `STENCIL_VERIFY_CASES` /
//! `STENCIL_VERIFY_SEED` scale the same suite into a long soak run.

pub mod conformance;
pub mod counter_model;
pub mod gen;
pub mod metamorphic;
pub mod oracle;
pub mod params_grid;

pub use conformance::{check_emission, conformance_problems};
pub use counter_model::{check_counters, predict_convstencil_mma, predict_lora};
pub use gen::{Case, CaseGen};
pub use metamorphic::check_relations;
pub use oracle::{
    differential_check, differential_check_against, replay_hint, roster, FaultInjector, DIFF_TOL,
};
pub use params_grid::check_params_identity;

/// Per-engine case count: `STENCIL_VERIFY_CASES` if set, else `default`.
pub fn verify_cases(default: usize) -> usize {
    std::env::var("STENCIL_VERIFY_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Fuzz seed: `STENCIL_VERIFY_SEED` (decimal or `0x…` hex) if set, else
/// the pinned [`foundation::prop::DEFAULT_SEED`].
pub fn verify_seed() -> u64 {
    std::env::var("STENCIL_VERIFY_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16).ok()
            } else {
                s.parse().ok()
            }
        })
        .unwrap_or(foundation::prop::DEFAULT_SEED)
}

/// Prop-harness config for one verification engine: pinned seed, env
/// overridable case count, bounded shrinking.
pub fn verify_config(default_cases: usize) -> foundation::prop::Config {
    foundation::prop::Config {
        cases: verify_cases(default_cases),
        seed: verify_seed(),
        max_shrink_rounds: 40,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_seed_parses_hex_and_decimal() {
        // no env set in the test harness by default: pinned seed
        if std::env::var("STENCIL_VERIFY_SEED").is_err() {
            assert_eq!(verify_seed(), foundation::prop::DEFAULT_SEED);
        }
        assert_eq!(verify_cases(37).max(1) >= 1, true);
    }
}

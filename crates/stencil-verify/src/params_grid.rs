//! Schedule-space neutrality: the differential engine for
//! [`ScheduleParams`].
//!
//! The schedule IR's contract is that every valid `ScheduleParams`
//! value (tile regrouping, double-buffered staging, MMA-chain batching)
//! is pure *schedule* — bit-identical output values and identical
//! `Prediction`-class counters against the default lowering, on every
//! kernel, shape and feature configuration. This module samples a
//! random valid parameter point per generated case and asserts exactly
//! that, so the `tune` search space is fuzzed with the same generator
//! coverage as the executors themselves.
//!
//! `fuse_override` is deliberately *not* sampled: overriding the fusion
//! depth changes the executed arithmetic, which is why the `tune`
//! command gates it behind its own bitwise comparison instead of
//! promising neutrality here.

use foundation::rng::Xoshiro256pp;
use lorastencil::checkpoint::grid_to_planes;
use lorastencil::schedule::{self, ScheduleParams, Staging};
use lorastencil::ExecConfig;
use tcu_sim::{GlobalArray, PerfCounters};

use crate::gen::Case;
use crate::oracle::replay_hint;

/// Deterministically sample one valid non-default parameter point and
/// one feature configuration from the case's data seed.
pub fn sample_params(case: &Case) -> (ScheduleParams, ExecConfig) {
    let mut rng = Xoshiro256pp::seed_from_u64(case.data_seed ^ 0x5C4E_D01E_7A6B_1234);
    let tiles = [8usize, 16, 24, 32, 48, 64];
    let batches = [1usize, 2, 3, 4, 8, 16];
    let params = ScheduleParams {
        tile_rows: tiles[rng.range_usize(0, tiles.len())],
        tile_cols: tiles[rng.range_usize(0, tiles.len())],
        staging: if rng.range_usize(0, 2) == 0 { Staging::Single } else { Staging::Double },
        mma_batch: batches[rng.range_usize(0, batches.len())],
        fuse_override: None,
    };
    debug_assert!(params.validate().is_ok());
    let roster = ExecConfig::ablation_roster();
    let (_, config) = roster[rng.range_usize(0, roster.len())];
    (params, config)
}

/// The counter fields a schedule must keep invariant. Keep in sync with
/// `invariant_counters` in `stencil-cli`'s tune module.
fn invariants(c: &PerfCounters) -> [u64; 7] {
    [
        c.mma_ops,
        c.mma_sp_ops,
        c.metadata_loads,
        c.shared_load_requests,
        c.shuffle_ops,
        c.global_bytes_written,
        c.points_updated,
    ]
}

fn first_bit_divergence(a: &[GlobalArray], b: &[GlobalArray]) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("plane counts differ: {} vs {}", a.len(), b.len()));
    }
    for (z, (x, y)) in a.iter().zip(b).enumerate() {
        if x.rows() != y.rows() || x.cols() != y.cols() {
            return Some(format!("plane {z} extents differ"));
        }
        for (i, (p, q)) in x.as_slice().iter().zip(y.as_slice()).enumerate() {
            if p.to_bits() != q.to_bits() {
                let (r, c) = (i / x.cols(), i % x.cols());
                return Some(format!(
                    "plane {z} ({r}, {c}): default {p:?} ({:#018x}) vs tuned {q:?} ({:#018x})",
                    p.to_bits(),
                    q.to_bits()
                ));
            }
        }
    }
    None
}

/// Run `case` under the default schedule and under one sampled
/// parameter point; any bitwise value divergence or invariant-counter
/// drift fails the property with the replay recipe.
pub fn check_params_identity(case: &Case) -> Result<(), String> {
    let (params, config) = sample_params(case);
    let planes = grid_to_planes(&case.input());
    let (def_out, def_ctr, _) = schedule::run_tuned(
        &case.kernel,
        config,
        ScheduleParams::default(),
        planes.clone(),
        case.iterations,
    );
    let (tuned_out, tuned_ctr, _) =
        schedule::run_tuned(&case.kernel, config, params, planes, case.iterations);
    if let Some(diff) = first_bit_divergence(&def_out, &tuned_out) {
        return Err(format!(
            "ScheduleParams {} (config {}) is not value-neutral: {diff}\n{}",
            params.describe(),
            config.tag(),
            replay_hint()
        ));
    }
    if invariants(&def_ctr) != invariants(&tuned_ctr) {
        return Err(format!(
            "ScheduleParams {} (config {}) drifts modeled counters: \
             default {:?} vs tuned {:?}\n{}",
            params.describe(),
            config.tag(),
            invariants(&def_ctr),
            invariants(&tuned_ctr),
            replay_hint()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::CaseGen;
    use foundation::prop::Gen;

    #[test]
    fn sampled_params_are_valid_and_deterministic() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xF00D);
        let mut nondefault = 0;
        for _ in 0..60 {
            let case = CaseGen.generate(&mut rng);
            let (p, c) = sample_params(&case);
            p.validate().unwrap();
            assert_eq!((p, c), sample_params(&case), "sampling must be pure");
            if p != ScheduleParams::default() {
                nondefault += 1;
            }
        }
        assert!(nondefault > 50, "the sampler must almost always leave the default point");
    }

    #[test]
    fn identity_holds_on_the_benchmark_kernels() {
        use stencil_core::kernels;
        for k in kernels::all_kernels() {
            let extents = match k.dims() {
                1 => vec![130],
                2 => vec![17, 24],
                _ => vec![4, 9, 16],
            };
            let case = Case { kernel: k, extents, iterations: 2, data_seed: 0xBEEF };
            check_params_identity(&case).unwrap();
        }
    }
}

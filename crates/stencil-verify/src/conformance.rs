//! # Cross-target structural conformance for emitted listings
//!
//! The multi-target code generator ([`lorastencil::codegen`]) renders
//! one lowered [`Schedule`](lorastencil::Schedule) per target; this
//! module holds each rendering accountable to the schedule it claims to
//! implement. It consumes the driver's [`Audit`] record — per-op text
//! spans, anchors, and declared constant-table tokens — and checks:
//!
//! 1. **Compile shape**: braces / brackets / parentheses balance after
//!    stripping `//` comments, so every listing is at least
//!    block-structured like real device code.
//! 2. **Capability honesty**: non-CUDA targets open with the
//!    `capability audit` header, and a WGSL listing that uses
//!    `subgroupShuffle` must `enable subgroups;` first.
//! 3. **Op accountability**: the per-op spans tile the kernel body
//!    contiguously and every op's anchor substring appears inside the
//!    span it was recorded for — no IR op may vanish silently.
//! 4. **Table accountability**: every rank-1 term's constant tables
//!    (and the 1-D banded table) are both *declared* and *read* in the
//!    listing — a U/V pair nothing references is a lowering bug.
//! 5. **Binding accountability** (WGSL only): every `@binding` and
//!    every `var<workgroup>` declaration is referenced at least once
//!    outside its declaration line.
//!
//! The checks are structural on purpose: no target toolchain exists in
//! this environment, so "does it look like code a compiler would
//! accept, and does it account for the whole schedule" is the strongest
//! gate available. The workspace test `codegen_conformance.rs` runs the
//! full kernel registry × every [`Target`] × the backend/feature matrix
//! through [`check_emission`].

use lorastencil::codegen::{self, Audit, Target};
use lorastencil::Plan;

/// Emit `plan` for `target` and run every structural conformance check.
/// Returns the [`Audit`] on success so callers can chain further
/// assertions; returns the full list of violations otherwise.
pub fn check_emission(plan: &Plan, target: Target) -> Result<Audit, Vec<String>> {
    let audit = codegen::audit(plan, target);
    let problems = conformance_problems(&audit);
    if problems.is_empty() {
        Ok(audit)
    } else {
        Err(problems)
    }
}

/// All structural violations of one emission record (empty = conforms).
pub fn conformance_problems(audit: &Audit) -> Vec<String> {
    let mut problems = Vec::new();
    check_balance(&audit.listing, &mut problems);
    check_capability_header(audit, &mut problems);
    check_op_spans(audit, &mut problems);
    check_tables(audit, &mut problems);
    if audit.target == Target::Wgsl {
        check_wgsl_bindings(&audit.listing, &mut problems);
    }
    problems
}

/// The listing with `//` line comments removed — balance is judged on
/// code, not prose (comments legitimately contain things like `:-)`-
/// grade fragments of math notation).
fn strip_line_comments(listing: &str) -> String {
    let mut out = String::with_capacity(listing.len());
    for line in listing.lines() {
        let code = match line.find("//") {
            Some(i) => &line[..i],
            None => line,
        };
        out.push_str(code);
        out.push('\n');
    }
    out
}

fn check_balance(listing: &str, problems: &mut Vec<String>) {
    let code = strip_line_comments(listing);
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (lineno, line) in code.lines().enumerate() {
        for c in line.chars() {
            match c {
                '(' | '[' | '{' => stack.push((c, lineno + 1)),
                ')' | ']' | '}' => {
                    let want = match c {
                        ')' => '(',
                        ']' => '[',
                        _ => '{',
                    };
                    match stack.pop() {
                        Some((open, _)) if open == want => {}
                        Some((open, at)) => problems.push(format!(
                            "line {}: `{c}` closes `{open}` opened on line {at}",
                            lineno + 1
                        )),
                        None => problems.push(format!("line {}: `{c}` with no opener", lineno + 1)),
                    }
                }
                _ => {}
            }
        }
    }
    for (open, at) in stack {
        problems.push(format!("line {at}: `{open}` never closed"));
    }
}

fn check_capability_header(audit: &Audit, problems: &mut Vec<String>) {
    if audit.target != Target::Cuda && !audit.listing.contains("capability audit") {
        problems.push(format!(
            "{} listing is missing its capability audit header",
            audit.target.name()
        ));
    }
    if audit.target == Target::Wgsl
        && audit.listing.contains("subgroupShuffle")
        && !audit.listing.contains("enable subgroups;")
    {
        problems.push("wgsl listing shuffles without `enable subgroups;`".to_string());
    }
}

fn check_op_spans(audit: &Audit, problems: &mut Vec<String>) {
    let mut cursor = None;
    for (i, op) in audit.ops.iter().enumerate() {
        if let Some(prev_end) = cursor {
            if op.span.start != prev_end {
                problems.push(format!(
                    "op {i} ({}) span starts at {} but op {} ended at {prev_end}",
                    op.op.mnemonic(),
                    op.span.start,
                    i - 1
                ));
            }
        }
        cursor = Some(op.span.end);
        let text = &audit.listing[op.span.clone()];
        match &op.anchor {
            Some(anchor) if !text.contains(anchor.as_str()) => problems.push(format!(
                "op {i} ({}) never rendered its anchor {anchor:?}",
                op.op.mnemonic()
            )),
            None if !text.trim().is_empty() => problems.push(format!(
                "op {i} ({}) rendered text but declared no anchor",
                op.op.mnemonic()
            )),
            _ => {}
        }
    }
}

fn check_tables(audit: &Audit, problems: &mut Vec<String>) {
    for (ti, refs) in audit.term_tables.iter().enumerate() {
        if refs.is_empty() {
            problems.push(format!("term {ti} declared no constant tables"));
        }
        for r in refs {
            if !audit.listing.contains(r.decl.as_str()) {
                problems.push(format!("term {ti}: missing declaration {:?}", r.decl));
            }
            if !audit.listing.contains(r.usage.as_str()) {
                problems.push(format!("term {ti}: table declared but never read ({:?})", r.usage));
            }
        }
    }
    for r in &audit.banded_tables {
        if !audit.listing.contains(r.decl.as_str()) {
            problems.push(format!("banded table: missing declaration {:?}", r.decl));
        }
        if !audit.listing.contains(r.usage.as_str()) {
            problems.push(format!("banded table declared but never read ({:?})", r.usage));
        }
    }
}

/// Every `@binding` / `var<workgroup>` declaration must be read
/// somewhere other than its own declaration line.
fn check_wgsl_bindings(listing: &str, problems: &mut Vec<String>) {
    for (lineno, line) in listing.lines().enumerate() {
        let is_binding = line.contains("@binding(");
        let is_workgroup = line.trim_start().starts_with("var<workgroup>");
        if !is_binding && !is_workgroup {
            continue;
        }
        // `... var<...> NAME : TYPE;` — the identifier before the colon.
        let Some(name) = line
            .split('>')
            .nth(1)
            .and_then(|rest| rest.split(':').next())
            .map(str::trim)
            .filter(|n| !n.is_empty())
        else {
            problems.push(format!("line {}: unparsable binding decl", lineno + 1));
            continue;
        };
        let used = listing
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != lineno)
            .any(|(_, l)| mentions_ident(l, name));
        if !used {
            problems.push(format!("wgsl binding `{name}` is declared but never referenced"));
        }
    }
}

/// Whole-identifier occurrence check (`P` must not match `Params`).
fn mentions_ident(line: &str, ident: &str) -> bool {
    let mut rest = line;
    while let Some(i) = rest.find(ident) {
        let before_ok = i == 0
            || !rest[..i].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[i + ident.len()..];
        let after_ok = !after.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[i + ident.len()..];
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorastencil::{DeviceBackend, ExecConfig};
    use stencil_core::kernels;

    #[test]
    fn every_registry_kernel_conforms_on_every_target() {
        for kernel in kernels::all_kernels() {
            for target in Target::ALL {
                let plan = Plan::new(&kernel, ExecConfig::full());
                if let Err(problems) = check_emission(&plan, target) {
                    panic!("{} on {}: {:#?}", kernel.name, target.name(), problems);
                }
            }
        }
    }

    #[test]
    fn backend_and_feature_variants_conform() {
        let kernel = kernels::box_2d49p();
        for backend in DeviceBackend::all() {
            for use_bvs in [true, false] {
                let cfg = ExecConfig { backend, use_bvs, ..ExecConfig::full() };
                for target in Target::ALL {
                    let plan = Plan::new(&kernel, cfg);
                    if let Err(problems) = check_emission(&plan, target) {
                        panic!("{backend:?}/bvs={use_bvs} on {}: {:#?}", target.name(), problems);
                    }
                }
            }
        }
    }

    #[test]
    fn wgsl_bvs_listing_carries_header_and_passes_structure_checks() {
        // the ISSUE's acceptance case: a BVS-enabled 2-D plan on WGSL
        let plan = Plan::new(&kernels::box_2d49p(), ExecConfig::full());
        let audit = check_emission(&plan, Target::Wgsl).expect("must conform");
        assert!(audit.listing.contains("capability audit"));
        assert!(audit.listing.contains("butterfly BVS"));
    }

    #[test]
    fn balance_checker_catches_mismatches() {
        let mut problems = Vec::new();
        check_balance("int f() { return (1 + [2); }\n", &mut problems);
        assert!(!problems.is_empty());
        problems.clear();
        check_balance("int f() { // comment with ( unmatched\n  return 1;\n}\n", &mut problems);
        assert!(problems.is_empty(), "comments must not affect balance: {problems:?}");
    }

    #[test]
    fn identifier_matcher_is_whole_token() {
        assert!(mentions_ident("let x = P.rows;", "P"));
        assert!(!mentions_ident("struct Params {", "P"));
        assert!(!mentions_ident("tile_out[i]", "tile"));
    }
}

//! The differential oracle: every registered executor against the scalar
//! reference implementation, on arbitrary generated problems.
//!
//! [`roster`] collects every executor the workspace registers —
//! LoRAStencil in every [`ExecConfig::ablation_roster`] configuration
//! (the shipped config, fusion off, and each cumulative stage of the
//! paper's Fig. 9 breakdown: CUDA-only RDG, +TCU, +BVS, +AsyncCopy),
//! the distributed executor on 2 and 3 simulated devices, and every
//! fp64-exact baseline. Executors that
//! report [`ExecError::Unsupported`] for a case are skipped (e.g. the
//! distributed executor on non-2-D grids); everything else must agree
//! with [`stencil_core::reference`] to [`DIFF_TOL`].
//!
//! A divergence is reported with the executor label, the max deviation
//! and a replay command; the prop harness then shrinks the case and
//! prints the minimal kernel ([`crate::gen::CaseGen::shrink`]).
//!
//! [`FaultInjector`] wraps any executor and rolls its output one row —
//! the classic off-by-one halo bug — so the suite can prove the oracle
//! actually catches, shrinks and reports divergences
//! (`tests/fuzz_differential.rs`).

use baselines::all_baselines;
use lorastencil::{ExecConfig, LoRaStencil};
use multi_gpu::DistributedLoRa;
use stencil_core::{reference, ExecError, ExecOutcome, Problem, StencilExecutor};

use crate::gen::Case;

/// Absolute agreement tolerance for fp64-exact executors. Inputs are in
/// `[-1, 1]` and generated kernels are L1-normalized, so grid values stay
/// bounded by 1 across iterations and an absolute tolerance is meaningful.
pub const DIFF_TOL: f64 = 1e-9;

/// A labeled executor. Labels disambiguate the LoRAStencil feature
/// configurations, which all share the `name()` string.
pub type LabeledExecutor = (String, Box<dyn StencilExecutor + Send + Sync>);

/// Every registered executor, labeled. The LoRAStencil configurations
/// come verbatim from [`ExecConfig::ablation_roster`] — the same list
/// the bench-suite breakdown and the counter-exactness validator
/// consume, so the three rosters cannot diverge.
pub fn roster() -> Vec<LabeledExecutor> {
    let mut v: Vec<LabeledExecutor> = Vec::new();
    for (label, cfg) in ExecConfig::ablation_roster() {
        v.push((format!("LoRAStencil({label})"), Box::new(LoRaStencil::with_config(cfg))));
    }
    for devices in [2, 3] {
        v.push((format!("LoRAStencil-dist{devices}"), Box::new(DistributedLoRa::new(devices))));
    }
    for b in all_baselines() {
        v.push((b.name().to_string(), b));
    }
    v
}

/// The command line that reruns the fuzz suite with the active seed and
/// case count. Appended to every divergence report.
pub fn replay_hint() -> String {
    let cases = match std::env::var("STENCIL_VERIFY_CASES") {
        Ok(c) => format!(" STENCIL_VERIFY_CASES={c}"),
        Err(_) => String::new(),
    };
    format!(
        "replay: STENCIL_VERIFY_SEED={:#x}{cases} cargo test --test fuzz_differential",
        crate::verify_seed()
    )
}

/// Run `case` through every executor in `exes` and compare against the
/// scalar reference. `Err` carries the full divergence report.
pub fn differential_check_against(exes: &[LabeledExecutor], case: &Case) -> Result<(), String> {
    let problem = case.problem();
    let want = reference::run(&problem.input, &problem.kernel, problem.iterations);
    for (label, exec) in exes {
        match exec.execute(&problem) {
            Err(ExecError::Unsupported(_)) => continue,
            Err(e) => {
                return Err(format!(
                    "executor `{label}` refused a valid case: {e}\n{}",
                    replay_hint()
                ))
            }
            Ok(ExecOutcome { output, counters, .. }) => {
                let diff = output.max_abs_diff(&want);
                if !(diff <= DIFF_TOL) {
                    return Err(format!(
                        "executor `{label}` diverged from reference: max |Δ| = {diff:.3e} \
                         (tol {DIFF_TOL:.1e})\n{}",
                        replay_hint()
                    ));
                }
                // distributed executors redundantly recompute ghost
                // tiles, so ≥; exact equality for single-device
                // executors is the counter engine's job
                if counters.points_updated < problem.total_updates() {
                    return Err(format!(
                        "executor `{label}` updated {} points, problem requires {}\n{}",
                        counters.points_updated,
                        problem.total_updates(),
                        replay_hint()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// [`differential_check_against`] over the full [`roster`].
pub fn differential_check(case: &Case) -> Result<(), String> {
    differential_check_against(&roster(), case)
}

/// Wraps an executor and rolls its output one row along the leading
/// axis — the signature of an off-by-one halo bug. Exists so the test
/// suite can demonstrate that the oracle catches, shrinks and reports an
/// injected divergence.
pub struct FaultInjector<E>(pub E);

impl<E: StencilExecutor> StencilExecutor for FaultInjector<E> {
    fn name(&self) -> &'static str {
        "fault-injected"
    }

    fn execute(&self, problem: &Problem) -> Result<ExecOutcome, ExecError> {
        let mut out = self.0.execute(problem)?;
        let mut shift = vec![0isize; out.output.dims()];
        shift[0] = 1;
        out.output = out.output.rolled(&shift);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::rng::Xoshiro256pp;
    use stencil_core::{Grid2D, Shape, StencilKernel, WeightMatrix, Weights};

    use crate::gen::CaseGen;
    use foundation::prop::Gen;

    #[test]
    fn roster_covers_every_executor_family() {
        let r = roster();
        assert!(r.len() >= 13, "roster has {} executors", r.len());
        let labels: Vec<&str> = r.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"LoRAStencil(full)"));
        assert!(labels.contains(&"LoRAStencil(no-fusion)"));
        assert!(labels.contains(&"LoRAStencil-dist2"));
        assert!(labels.contains(&"ConvStencil"));
        assert!(labels.contains(&"cuDNN"));
        // labels are unique: a report always identifies one executor
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }

    /// Anti-divergence guard: the oracle's LoRAStencil configurations
    /// are exactly the shared ablation roster — if someone adds a stage
    /// to [`ExecConfig::ablation_roster`] (or hand-edits this roster),
    /// this test forces the two back into lockstep.
    #[test]
    fn lora_roster_never_diverges_from_the_shared_ablation_roster() {
        let labels: Vec<String> = roster().into_iter().map(|(l, _)| l).collect();
        let shared = ExecConfig::ablation_roster();
        for (label, _) in &shared {
            assert!(
                labels.contains(&format!("LoRAStencil({label})")),
                "oracle roster is missing ablation stage `{label}`"
            );
        }
        let lora_count = labels.iter().filter(|l| l.starts_with("LoRAStencil(")).count();
        assert_eq!(lora_count, shared.len(), "oracle carries extra LoRAStencil configs");
    }

    #[test]
    fn generated_cases_pass_the_full_roster() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xD1FF);
        let exes = roster();
        for _ in 0..3 {
            let case = CaseGen.generate(&mut rng);
            differential_check_against(&exes, &case).unwrap();
        }
    }

    #[test]
    fn fault_injector_is_caught() {
        let mut w = WeightMatrix::zero(3);
        w.set(1, 1, 1.0);
        let case = crate::gen::Case {
            kernel: StencilKernel {
                name: "center".into(),
                shape: Shape::Box,
                radius: 1,
                weights: Weights::D2(w),
            },
            extents: vec![8, 8],
            iterations: 1,
            data_seed: 7,
        };
        let faulty: Vec<LabeledExecutor> =
            vec![("fault-injected".into(), Box::new(FaultInjector(LoRaStencil::new())))];
        let err = differential_check_against(&faulty, &case).unwrap_err();
        assert!(err.contains("fault-injected"), "{err}");
        assert!(err.contains("replay: STENCIL_VERIFY_SEED="), "{err}");
    }

    #[test]
    fn fault_injector_preserves_unsupported() {
        let exec = FaultInjector(DistributedLoRa::new(2));
        let p = Problem::new(
            stencil_core::kernels::box_2d9p(),
            Grid2D::from_fn(4, 4, |r, c| (r + c) as f64),
            1,
        );
        assert!(matches!(exec.execute(&p), Err(ExecError::Unsupported(_))));
    }
}

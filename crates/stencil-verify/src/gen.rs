//! Arbitrary-stencil generator for the verification engines.
//!
//! [`CaseGen`] draws complete stencil problems — kernel, grid extents,
//! iteration count, input data seed — covering the paper's whole shape
//! space and beyond it:
//!
//! * dimensionality 1/2/3 (2-D weighted highest: it is the paper's focus),
//! * radius 1–4 (3-D capped at 2 to keep simulated work bounded),
//! * weight structure: radially symmetric (pyramidal / PMA path),
//!   symmetric (eigen path), asymmetric and explicit low-rank (SVD path),
//!   star (axis-only fast path), and 3-D plane mixes that exercise the
//!   planner's Skip / Pointwise / Rdg classification,
//! * grid extents straddling the 8-point tile and 64-point segment
//!   boundaries (7/8/9, 63/64/65, …),
//! * 1–6 time steps so temporal fusion full/remainder splits are hit.
//!
//! Weights are L1-normalized, so iterating any generated kernel keeps
//! grid values bounded by the input's max-abs — absolute tolerances stay
//! meaningful at every step count.
//!
//! Shrinking is structural, simplest candidate first: fewer iterations,
//! a pure-center kernel, minimal extents, smaller radius, individual
//! weights zeroed, then the data seed.

use std::fmt;

use foundation::prop::Gen;
use foundation::rng::Xoshiro256pp;
use stencil_core::spec::render_kernel;
use stencil_core::{
    Grid1D, Grid2D, Grid3D, GridData, Problem, Shape, StencilKernel, WeightMatrix, Weights,
};

/// Grid extents offered per axis, chosen to straddle the 8-point tile
/// boundary (2-D/3-D) and the 64-point segment boundary (1-D).
const EXTENTS_1D: &[usize] = &[63, 64, 65, 96, 127, 128, 130];
const EXTENTS_2D: &[usize] = &[7, 8, 9, 15, 16, 17, 24, 31, 33];
const EXTENTS_3D_Z: &[usize] = &[3, 4, 5];
const EXTENTS_3D_XY: &[usize] = &[7, 8, 9, 16, 17];

/// One generated verification case: a full stencil problem plus the seed
/// that reproduces its input grid.
#[derive(Clone, PartialEq)]
pub struct Case {
    /// The generated kernel (always passes `StencilKernel::validate`).
    pub kernel: StencilKernel,
    /// Grid extents: `[n]`, `[rows, cols]` or `[nz, ny, nx]`.
    pub extents: Vec<usize>,
    /// Time steps to run (1–6).
    pub iterations: usize,
    /// Seed for the input grid data (values uniform in `[-1, 1]`).
    pub data_seed: u64,
}

impl Case {
    /// Deterministic input grid for this case.
    pub fn input(&self) -> GridData {
        let mut rng = Xoshiro256pp::seed_from_u64(self.data_seed);
        match self.extents[..] {
            [n] => {
                GridData::D1(Grid1D::from_vec((0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect()))
            }
            [rows, cols] => GridData::D2(Grid2D::from_vec(
                rows,
                cols,
                (0..rows * cols).map(|_| rng.range_f64(-1.0, 1.0)).collect(),
            )),
            [nz, ny, nx] => {
                let mut g = Grid3D::new(nz, ny, nx);
                for z in 0..nz {
                    for y in 0..ny {
                        for x in 0..nx {
                            g.set(z, y, x, rng.range_f64(-1.0, 1.0));
                        }
                    }
                }
                GridData::D3(g)
            }
            _ => unreachable!("extents are 1-, 2- or 3-long"),
        }
    }

    /// The full problem this case describes.
    pub fn problem(&self) -> Problem {
        Problem::new(self.kernel.clone(), self.input(), self.iterations)
    }
}

impl fmt::Debug for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Case {{ extents: {:?}, iterations: {}, data_seed: {:#x} }}",
            self.extents, self.iterations, self.data_seed
        )?;
        for line in render_kernel(&self.kernel).lines() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Sum of `|w|` over every kernel weight.
fn l1(kernel: &StencilKernel) -> f64 {
    match &kernel.weights {
        Weights::D1(w) => w.iter().map(|v| v.abs()).sum(),
        Weights::D2(w) => w.as_slice().iter().map(|v| v.abs()).sum(),
        Weights::D3(ws) => ws.iter().flat_map(|w| w.as_slice()).map(|v| v.abs()).sum(),
    }
}

fn scale_weights(kernel: &mut StencilKernel, s: f64) {
    match &mut kernel.weights {
        Weights::D1(w) => w.iter_mut().for_each(|v| *v *= s),
        Weights::D2(w) => {
            *w = WeightMatrix::from_vec(w.n(), w.as_slice().iter().map(|v| v * s).collect())
        }
        Weights::D3(ws) => {
            for w in ws.iter_mut() {
                *w = WeightMatrix::from_vec(w.n(), w.as_slice().iter().map(|v| v * s).collect());
            }
        }
    }
}

/// Force the center weight to `v` (used when a draw comes out all-zero).
fn set_center(kernel: &mut StencilKernel, v: f64) {
    let h = kernel.radius;
    match &mut kernel.weights {
        Weights::D1(w) => w[h] = v,
        Weights::D2(w) => w.set(h, h, v),
        Weights::D3(ws) => ws[h].set(h, h, v),
    }
}

/// Normalize to unit L1 so iterated applications stay bounded.
fn normalize(kernel: &mut StencilKernel) {
    let total = l1(kernel);
    if total < 1e-12 {
        set_center(kernel, 1.0);
        return;
    }
    scale_weights(kernel, 1.0 / total);
}

fn random_matrix(n: usize, rng: &mut Xoshiro256pp) -> WeightMatrix {
    WeightMatrix::from_vec(n, (0..n * n).map(|_| rng.range_f64(-1.0, 1.0)).collect())
}

/// 2-D weight structures the generator can draw, with draw weights.
fn gen_2d(h: usize, rng: &mut Xoshiro256pp) -> (Shape, WeightMatrix) {
    let n = 2 * h + 1;
    match rng.range_usize(0, 8) {
        // radially symmetric rings: the pyramidal (PMA) decomposition path
        0 | 1 => {
            let rings: Vec<f64> = (0..=h).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let w = WeightMatrix::from_fn(n, |i, j| {
                let ring = (i as isize - h as isize).abs().max((j as isize - h as isize).abs());
                rings[ring as usize]
            });
            (Shape::Box, w)
        }
        // symmetric matrix: the eigendecomposition path
        2 | 3 => {
            let a = random_matrix(n, rng);
            let w = WeightMatrix::from_fn(n, |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
            (Shape::Box, w)
        }
        // explicit rank-r outer-product sum: the SVD path at a known rank
        4 => {
            let r = rng.range_usize(1, 3);
            let mut w = WeightMatrix::zero(n);
            for _ in 0..r {
                let u: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
                let v: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
                w = w.add(&WeightMatrix::from_fn(n, |i, j| u[i] * v[j]));
            }
            (Shape::Box, w)
        }
        // star: only the center row/column — the axis-only fast path
        5 => {
            let mut w = WeightMatrix::zero(n);
            for i in 0..n {
                for j in 0..n {
                    if i == h || j == h {
                        w.set(i, j, rng.range_f64(-1.0, 1.0));
                    }
                }
            }
            (Shape::Star, w)
        }
        // fully asymmetric: the general SVD path
        _ => (Shape::Box, random_matrix(n, rng)),
    }
}

/// One 3-D plane: zero (Skip), center-only (Pointwise) or full (Rdg).
fn gen_3d_plane(n: usize, h: usize, rng: &mut Xoshiro256pp) -> WeightMatrix {
    match rng.range_usize(0, 7) {
        0 | 1 => WeightMatrix::zero(n),
        2 | 3 => {
            let mut w = WeightMatrix::zero(n);
            w.set(h, h, rng.range_f64(-1.0, 1.0));
            w
        }
        _ => random_matrix(n, rng),
    }
}

fn gen_kernel(dim: usize, h: usize, rng: &mut Xoshiro256pp) -> StencilKernel {
    let n = 2 * h + 1;
    let (shape, weights) = match dim {
        1 => {
            let mut w: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            // mirror half the time: symmetric 1-D kernels are the common case
            if rng.range_usize(0, 2) == 0 {
                for i in 0..h {
                    w[n - 1 - i] = w[i];
                }
            }
            (Shape::Box, Weights::D1(w))
        }
        2 => {
            let (shape, w) = gen_2d(h, rng);
            (shape, Weights::D2(w))
        }
        _ => {
            let planes: Vec<WeightMatrix> = (0..n).map(|_| gen_3d_plane(n, h, rng)).collect();
            (Shape::Box, Weights::D3(planes))
        }
    };
    let mut k = StencilKernel { name: format!("fuzz-{dim}d-r{h}"), shape, radius: h, weights };
    normalize(&mut k);
    debug_assert!(k.validate().is_ok(), "generated kernel must validate: {:?}", k.validate());
    k
}

/// Truncate a kernel to radius `h - 1`, keeping the centered weights.
fn truncate_radius(kernel: &StencilKernel) -> Option<StencilKernel> {
    let h = kernel.radius;
    if h <= 1 {
        return None;
    }
    let m = 2 * (h - 1) + 1;
    let weights = match &kernel.weights {
        Weights::D1(w) => Weights::D1(w[1..w.len() - 1].to_vec()),
        Weights::D2(w) => Weights::D2(w.center_block(m)),
        Weights::D3(ws) => {
            Weights::D3(ws[1..ws.len() - 1].iter().map(|w| w.center_block(m)).collect())
        }
    };
    let mut k = StencilKernel {
        name: format!("{}-shrunk", kernel.name),
        shape: kernel.shape,
        radius: h - 1,
        weights,
    };
    if l1(&k) < 1e-12 {
        set_center(&mut k, 1.0);
    }
    Some(k)
}

/// All weights of a kernel as a flat editable list, plus a writer.
fn weight_count(kernel: &StencilKernel) -> usize {
    match &kernel.weights {
        Weights::D1(w) => w.len(),
        Weights::D2(w) => w.as_slice().len(),
        Weights::D3(ws) => ws.iter().map(|w| w.as_slice().len()).sum(),
    }
}

fn weight_at(kernel: &StencilKernel, idx: usize) -> f64 {
    match &kernel.weights {
        Weights::D1(w) => w[idx],
        Weights::D2(w) => w.as_slice()[idx],
        Weights::D3(ws) => {
            let per = ws[0].as_slice().len();
            ws[idx / per].as_slice()[idx % per]
        }
    }
}

fn zero_weight(kernel: &StencilKernel, idx: usize) -> StencilKernel {
    let mut k = kernel.clone();
    match &mut k.weights {
        Weights::D1(w) => w[idx] = 0.0,
        Weights::D2(w) => {
            let n = w.n();
            w.set(idx / n, idx % n, 0.0);
        }
        Weights::D3(ws) => {
            let per = ws[0].as_slice().len();
            let n = ws[0].n();
            let local = idx % per;
            ws[idx / per].set(local / n, local % n, 0.0);
        }
    }
    k
}

/// Pure-center kernel of the same dimensionality: the simplest kernel a
/// failing case can shrink to.
fn center_only(dim: usize) -> StencilKernel {
    let weights = match dim {
        1 => Weights::D1(vec![0.0, 1.0, 0.0]),
        2 => {
            let mut w = WeightMatrix::zero(3);
            w.set(1, 1, 1.0);
            Weights::D2(w)
        }
        _ => {
            let mut mid = WeightMatrix::zero(3);
            mid.set(1, 1, 1.0);
            Weights::D3(vec![WeightMatrix::zero(3), mid, WeightMatrix::zero(3)])
        }
    };
    StencilKernel { name: format!("center-{dim}d"), shape: Shape::Box, radius: 1, weights }
}

fn min_extents(dim: usize) -> Vec<usize> {
    match dim {
        1 => vec![EXTENTS_1D[0]],
        2 => vec![EXTENTS_2D[0], EXTENTS_2D[0]],
        _ => vec![EXTENTS_3D_Z[0], EXTENTS_3D_XY[0], EXTENTS_3D_XY[0]],
    }
}

/// Generator of arbitrary stencil verification cases (see module docs).
#[derive(Debug, Default, Clone, Copy)]
pub struct CaseGen;

impl Gen for CaseGen {
    type Value = Case;

    fn generate(&self, rng: &mut Xoshiro256pp) -> Case {
        // 2-D is the paper's focus: weight it highest
        let dim = *pick(&[1, 2, 2, 2, 3, 3], rng);
        let radius = match dim {
            3 => rng.range_usize(1, 3), // 3-D work grows as n^3: cap at 2
            _ => rng.range_usize(1, 5), // 1-D/2-D: the paper's full 1–4
        };
        let kernel = gen_kernel(dim, radius, rng);
        let extents = match dim {
            1 => vec![*pick(EXTENTS_1D, rng)],
            2 => vec![*pick(EXTENTS_2D, rng), *pick(EXTENTS_2D, rng)],
            _ => {
                vec![*pick(EXTENTS_3D_Z, rng), *pick(EXTENTS_3D_XY, rng), *pick(EXTENTS_3D_XY, rng)]
            }
        };
        let mut iterations = rng.range_usize(1, 7);
        if dim == 3 {
            iterations = iterations.min(3); // 3-D cases are the most expensive
        }
        let data_seed = rng.next_u64() & 0xFFFF_FFFF;
        Case { kernel, extents, iterations, data_seed }
    }

    fn shrink(&self, v: &Case) -> Vec<Case> {
        let mut out = Vec::new();
        let dim = v.extents.len();
        // 1. fewer time steps
        if v.iterations > 1 {
            out.push(Case { iterations: 1, ..v.clone() });
            out.push(Case { iterations: v.iterations - 1, ..v.clone() });
        }
        // 2. the simplest kernel of this dimensionality
        let center = center_only(dim);
        if v.kernel != center {
            out.push(Case { kernel: center, ..v.clone() });
        }
        // 3. minimal grid extents, one axis at a time
        let mins = min_extents(dim);
        for (axis, &min) in mins.iter().enumerate() {
            if v.extents[axis] > min {
                let mut e = v.extents.clone();
                e[axis] = min;
                out.push(Case { extents: e, ..v.clone() });
            }
        }
        // 4. smaller radius
        if let Some(k) = truncate_radius(&v.kernel) {
            out.push(Case { kernel: k, ..v.clone() });
        }
        // 5. zero individual weights, smallest magnitude first (capped:
        //    each candidate costs a full property evaluation)
        let mut nonzero: Vec<(usize, f64)> = (0..weight_count(&v.kernel))
            .filter_map(|i| {
                let w = weight_at(&v.kernel, i);
                (w != 0.0).then_some((i, w.abs()))
            })
            .collect();
        if nonzero.len() > 1 {
            nonzero.sort_by(|a, b| a.1.total_cmp(&b.1));
            for &(idx, _) in nonzero.iter().take(8) {
                out.push(Case { kernel: zero_weight(&v.kernel, idx), ..v.clone() });
            }
        }
        // 6. canonical data seed
        if v.data_seed != 0 {
            out.push(Case { data_seed: 0, ..v.clone() });
        }
        out
    }
}

fn pick<'a, T>(choices: &'a [T], rng: &mut Xoshiro256pp) -> &'a T {
    &choices[rng.range_usize(0, choices.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::rng::Xoshiro256pp;

    fn sample(n: usize) -> Vec<Case> {
        let mut rng = Xoshiro256pp::seed_from_u64(0xCA5E);
        (0..n).map(|_| CaseGen.generate(&mut rng)).collect()
    }

    #[test]
    fn generated_kernels_validate_and_are_l1_normalized() {
        for case in sample(200) {
            assert!(case.kernel.validate().is_ok());
            let total = l1(&case.kernel);
            assert!((total - 1.0).abs() < 1e-9, "L1 {total}");
            assert_eq!(case.extents.len(), case.kernel.dims());
            assert!((1..=6).contains(&case.iterations));
        }
    }

    #[test]
    fn generator_covers_every_dimension_and_structure() {
        let cases = sample(300);
        for d in 1..=3 {
            assert!(cases.iter().any(|c| c.extents.len() == d), "no {d}-D case");
        }
        // star kernels (axis-only) and box kernels both appear
        assert!(cases.iter().any(|c| c.kernel.shape == Shape::Star));
        assert!(cases.iter().any(|c| c.kernel.shape == Shape::Box));
        // every offered radius appears
        for h in 1..=4 {
            assert!(cases.iter().any(|c| c.kernel.radius == h), "no radius-{h} case");
        }
        // extents straddle tile boundaries: both sides of 8 and 64 appear
        assert!(cases.iter().any(|c| c.extents.iter().any(|&e| e % 8 != 0)));
        assert!(cases.iter().any(|c| c.extents.iter().all(|&e| e % 8 == 0)));
        // fused and single-step cases both appear
        assert!(cases.iter().any(|c| c.iterations == 1));
        assert!(cases.iter().any(|c| c.iterations > 1));
    }

    #[test]
    fn input_is_deterministic_and_bounded() {
        let case = sample(1).remove(0);
        let a = case.input();
        let b = case.input();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert!(a.max_abs() <= 1.0);
        assert_eq!(a.len(), case.extents.iter().product::<usize>());
    }

    #[test]
    fn shrink_candidates_stay_valid_and_get_simpler() {
        for case in sample(50) {
            for cand in CaseGen.shrink(&case) {
                assert!(cand.kernel.validate().is_ok());
                assert!(cand.iterations <= case.iterations);
                assert!(cand.kernel.radius <= case.kernel.radius);
                assert_eq!(cand.extents.len(), case.extents.len());
            }
        }
    }

    #[test]
    fn shrink_reaches_a_fixed_point() {
        // repeatedly taking the first candidate terminates: no cycles
        let mut case = sample(1).remove(0);
        for _ in 0..200 {
            let cands = CaseGen.shrink(&case);
            match cands.into_iter().next() {
                Some(c) => case = c,
                None => return,
            }
        }
        // the chain must have ended well before 200 steps
        let remaining = CaseGen.shrink(&case);
        assert!(remaining.is_empty() || case.iterations == 1);
    }
}

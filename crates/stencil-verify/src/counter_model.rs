//! Closed-form counter model: the paper's Eq. 12/13/16 generalized to
//! functions of `(h, dim, times)` and asserted to the digit against the
//! simulator's measured [`PerfCounters`].
//!
//! Per (possibly fused) application of radius-`h'` LoRAStencil on an
//! `R×C` grid, with `S = max(16, 8⌈(8+2h')/8⌉)`, `rb = S/4`, `cb = S/8`,
//! `T = ⌈R/8⌉⌈C/8⌉` tiles and `t` decomposition terms:
//!
//! * **Eq. 12** — shared fragment loads: `T · rb · cb` (one B-fragment
//!   load per 4×8 block of the shared `X` tile; for `S = 16` this is the
//!   paper's `RC/8` — 8 points gathered per load).
//! * **Eq. 16** — MMA count: `T · t · (rb·cb + rb)`
//!   (`rb·cb` step-1 multiplies plus `2·cb = rb` step-2 gathers per
//!   term; `12·t` per tile at `S = 16`).
//! * **Fig. 9** — shuffles: `0` under BVS; the natural accumulator
//!   split pays `2` shuffles per half, i.e. `T · t · 4·cb`.
//! * **Eq. 13** — ConvStencil: `2⌈(2h+1)²/4⌉` fragments (= MMAs) per
//!   `8×(2h+2)` output chunk, `64/(8(2h+2))` chunks per 8×8 tile.
//!
//! Temporal fusion splits `iterations` into `⌊iters/f⌋` applications of
//! the fused kernel (radius `h·f`) plus `iters mod f` base applications;
//! both sides of the split use the same per-application forms.

use baselines::ConvStencil;
use lorastencil::rdg::term_is_sparse;
use lorastencil::{fusion, Decomposition, DeviceBackend, ExecConfig, LoRaStencil, Plan, PlaneOp};
use stencil_core::{StencilExecutor, StencilKernel};
use tcu_sim::PerfCounters;

use crate::gen::Case;
use crate::oracle::replay_hint;

/// The counter fields the closed forms predict exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Prediction {
    /// Dense tensor-core MMA instructions (Eq. 16 generalized; under
    /// the sparse backend only the non-compressible terms and the
    /// always-dense step-2 gathers remain here).
    pub mma_ops: u64,
    /// Structured-sparse `mma.sp` instructions: `rb·cb` per
    /// 2:4-compressible term per tile, sparse backend only.
    pub mma_sp_ops: u64,
    /// Metadata-register loads: one per `U` fragment (`rb`) per
    /// compressible term per tile, reused across column blocks.
    pub metadata_loads: u64,
    /// Warp-level shared-memory load requests from fragment loads
    /// (Eq. 12 generalized).
    pub shared_load_requests: u64,
    /// Cross-lane shuffles: 0 under BVS, `t · 4·cb` per tile otherwise.
    pub shuffle_ops: u64,
    /// Output bytes: every application writes the full grid once.
    pub global_bytes_written: u64,
    /// `iterations × grid points`, independent of fusion.
    pub points_updated: u64,
}

impl Prediction {
    /// `(field, predicted, measured)` for every field that disagrees.
    pub fn compare(&self, m: &PerfCounters) -> Vec<(&'static str, u64, u64)> {
        [
            ("mma_ops", self.mma_ops, m.mma_ops),
            ("mma_sp_ops", self.mma_sp_ops, m.mma_sp_ops),
            ("metadata_loads", self.metadata_loads, m.metadata_loads),
            ("shared_load_requests", self.shared_load_requests, m.shared_load_requests),
            ("shuffle_ops", self.shuffle_ops, m.shuffle_ops),
            ("global_bytes_written", self.global_bytes_written, m.global_bytes_written),
            ("points_updated", self.points_updated, m.points_updated),
        ]
        .into_iter()
        .filter(|(_, want, got)| want != got)
        .collect()
    }
}

fn tiles_2d(rows: usize, cols: usize) -> u64 {
    (rows.div_ceil(8) * cols.div_ceil(8)) as u64
}

/// Per-tile RDG instruction counts of one decomposition under the
/// plan's backend: `(mma, mma_sp, metadata)`. The sparse split is
/// decided per term by the same [`term_is_sparse`] predicate the
/// executor's fragment prebuild uses, so model and measurement can
/// never disagree on which terms compress.
fn tile_term_counts(plan: &Plan, d: &Decomposition) -> (u64, u64, u64) {
    let geo = plan.geo;
    let (rb, cb) = (geo.row_blocks() as u64, geo.col_blocks() as u64);
    match plan.config.backend {
        DeviceBackend::CudaCore | DeviceBackend::SimdCore => (0, 0, 0),
        DeviceBackend::TcuF64 => (d.num_terms() as u64 * geo.mma_per_term(), 0, 0),
        DeviceBackend::SparseTcu => {
            let (mut mma, mut sp, mut meta) = (0, 0, 0);
            for t in &d.terms {
                if term_is_sparse(t, geo) {
                    // step 1 runs as mma.sp with one metadata load per U
                    // fragment; the step-2 gathers (rb of them) stay dense
                    mma += rb;
                    sp += rb * cb;
                    meta += rb;
                } else {
                    mma += geo.mma_per_term();
                }
            }
            (mma, sp, meta)
        }
    }
}

/// Per-application counters of the 2-D executor under `plan`:
/// `(mma, mma_sp, metadata, loads, shuffles)`.
fn app_2d(plan: &Plan, tiles: u64) -> (u64, u64, u64, u64, u64) {
    let geo = plan.geo;
    let (rb, cb) = (geo.row_blocks() as u64, geo.col_blocks() as u64);
    let terms = plan.decomp().num_terms() as u64;
    let loads = tiles * rb * cb;
    let (mma, sp, meta) = tile_term_counts(plan, plan.decomp());
    let shuffles =
        if plan.config.use_tcu() && !plan.config.use_bvs { tiles * terms * 4 * cb } else { 0 };
    (tiles * mma, tiles * sp, tiles * meta, loads, shuffles)
}

/// Per-application counters of the 3-D executor under `plan` (per grid,
/// i.e. summed over the `nz × tiles` jobs).
fn app_3d(plan: &Plan, jobs: u64) -> (u64, u64, u64, u64, u64) {
    let geo = plan.geo;
    let (rb, cb) = (geo.row_blocks() as u64, geo.col_blocks() as u64);
    let (mut mma, mut sp, mut meta, mut loads, mut shuffles) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for op in plan.plane_ops() {
        if let PlaneOp::Rdg(d) = op {
            let terms = d.num_terms() as u64;
            loads += rb * cb;
            let (m, s, md) = tile_term_counts(plan, d);
            mma += m;
            sp += s;
            meta += md;
            if plan.config.use_tcu() && !plan.config.use_bvs {
                shuffles += terms * 4 * cb;
            }
        }
    }
    (mma * jobs, sp * jobs, meta * jobs, loads * jobs, shuffles * jobs)
}

/// Closed-form LoRAStencil counters for `kernel` on a grid of `extents`,
/// `iterations` time steps, feature set `config`.
///
/// Valid for every backend: the dense and sparse tensor-core paths
/// split per Eq. 16 and the 2:4 term predicate; the CUDA-core and SIMD
/// fallbacks of the 2-D/3-D executors charge no MMAs but the same
/// fragment loads; the 1-D executor has a single (dense-TCU) MMA path.
///
/// Plans resolve through [`Plan::new_tuned`] — the same tuning-DB lookup
/// the executors make — so a `fuse_override` from an installed DB moves
/// the fusion split identically in model and measurement. Every other
/// [`ScheduleParams`] axis (tile extents, staging, MMA batching) is
/// counter-invariant by construction, so the closed forms need no other
/// tuning inputs.
pub fn predict_lora(
    kernel: &StencilKernel,
    extents: &[usize],
    iterations: usize,
    config: ExecConfig,
) -> Prediction {
    let len: usize = extents.iter().product();
    let base_cfg = ExecConfig { allow_fusion: false, ..config };
    match *extents {
        [n] => {
            let plan = Plan::new_tuned(kernel, config, extents);
            let full = (iterations / plan.fusion) as u64;
            let rem = (iterations % plan.fusion) as u64;
            let tiles = n.div_ceil(64) as u64;
            let app = tiles * (plan.seg_len() / 4) as u64;
            let base = tiles * (Plan::new_tuned(kernel, base_cfg, extents).seg_len() / 4) as u64;
            // the 1-D gather is a single MM: loads ≡ MMAs, no shuffles
            // (and no sparse split — 1-D lowering is always dense TCU)
            let mma = full * app + rem * base;
            Prediction {
                mma_ops: mma,
                shared_load_requests: mma,
                global_bytes_written: (full + rem) * (n * 8) as u64,
                points_updated: (iterations * n) as u64,
                ..Prediction::default()
            }
        }
        [rows, cols] => {
            let plan = Plan::new_tuned(kernel, config, extents);
            let full = (iterations / plan.fusion) as u64;
            let rem = (iterations % plan.fusion) as u64;
            let tiles = tiles_2d(rows, cols);
            let (fm, fsp, fmd, fl, fs) = app_2d(&plan, tiles);
            let (bm, bsp, bmd, bl, bs) = if rem > 0 {
                app_2d(&Plan::new_tuned(kernel, base_cfg, extents), tiles)
            } else {
                (0, 0, 0, 0, 0)
            };
            Prediction {
                mma_ops: full * fm + rem * bm,
                mma_sp_ops: full * fsp + rem * bsp,
                metadata_loads: full * fmd + rem * bmd,
                shared_load_requests: full * fl + rem * bl,
                shuffle_ops: full * fs + rem * bs,
                global_bytes_written: (full + rem) * (len * 8) as u64,
                points_updated: (iterations * len) as u64,
            }
        }
        [nz, ny, nx] => {
            // 3-D is never fused (dimension residue, §IV-C)
            let plan = Plan::new_tuned(kernel, config, extents);
            let jobs = nz as u64 * tiles_2d(ny, nx);
            let (m, sp, md, l, s) = app_3d(&plan, jobs);
            let apps = iterations as u64;
            Prediction {
                mma_ops: apps * m,
                mma_sp_ops: apps * sp,
                metadata_loads: apps * md,
                shared_load_requests: apps * l,
                shuffle_ops: apps * s,
                global_bytes_written: apps * (len * 8) as u64,
                points_updated: (iterations * len) as u64,
            }
        }
        _ => unreachable!("extents are 1-, 2- or 3-long"),
    }
}

/// Eq. 13 fragments (= MMAs) per output chunk for a kernel of side `n`.
fn frags_per_chunk(n: usize) -> u64 {
    2 * ((n * n) as u64).div_ceil(4)
}

/// Closed-form ConvStencil MMA count (Eq. 13 generalized across
/// dimensionality and temporal fusion).
pub fn predict_convstencil_mma(
    kernel: &StencilKernel,
    extents: &[usize],
    iterations: usize,
) -> u64 {
    let fuse = if kernel.radius == 1 { 3 } else { 1 };
    let full = (iterations / fuse) as u64;
    let rem = (iterations % fuse) as u64;
    let app = |k: &StencilKernel| -> u64 {
        let h = k.radius;
        let n = 2 * h + 1;
        let chunks = 64.0 / (8 * (2 * h + 2)) as f64;
        match *extents {
            [ng] => {
                // 1-D stencil2row: 1-D windows, chunk = 8(2h+2) outputs
                let tiles = ng.div_ceil(8 * (2 * h + 2)) as u64;
                tiles * 2 * (n as u64).div_ceil(4)
            }
            [rows, cols] => {
                tiles_2d(rows, cols) * (frags_per_chunk(n) as f64 * chunks).ceil() as u64
            }
            [nz, ny, nx] => {
                let nonzero_planes =
                    k.weights_3d().iter().filter(|w| w.nonzero_points() > 0).count() as u64;
                let jobs = nz as u64 * tiles_2d(ny, nx);
                jobs * nonzero_planes * (frags_per_chunk(n) as f64 * chunks).ceil() as u64
            }
            _ => unreachable!(),
        }
    };
    if fuse == 1 {
        full * app(kernel)
    } else {
        full * app(&fusion::fuse_kernel(kernel, fuse)) + rem * app(kernel)
    }
}

/// Validate the closed forms against measured counters for `case`, in
/// every configuration of [`ExecConfig::ablation_roster`] — the same
/// single-source-of-truth roster the bench-suite breakdown runs, so the
/// counter model can never silently cover fewer configurations than the
/// ablation measures. Every predicted field must match to the digit;
/// ConvStencil's MMA count must match Eq. 13 exactly.
pub fn check_counters(case: &Case) -> Result<(), String> {
    for (label, cfg) in ExecConfig::ablation_roster() {
        let out = LoRaStencil::with_config(cfg)
            .execute(&case.problem())
            .map_err(|e| format!("LoRAStencil({label}) refused a valid case: {e}"))?;
        let pred = predict_lora(&case.kernel, &case.extents, case.iterations, cfg);
        let mismatches = pred.compare(&out.counters);
        if !mismatches.is_empty() {
            let detail: Vec<String> = mismatches
                .iter()
                .map(|(f, want, got)| format!("{f}: predicted {want}, measured {got}"))
                .collect();
            return Err(format!(
                "counter model mismatch for LoRAStencil({label}): {}\n{}",
                detail.join("; "),
                replay_hint()
            ));
        }
    }
    let out = ConvStencil::new()
        .execute(&case.problem())
        .map_err(|e| format!("ConvStencil refused a valid case: {e}"))?;
    let want = predict_convstencil_mma(&case.kernel, &case.extents, case.iterations);
    if out.counters.mma_ops != want {
        return Err(format!(
            "Eq. 13 mismatch for ConvStencil: predicted {want} MMAs, measured {}\n{}",
            out.counters.mma_ops,
            replay_hint()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::{kernels, Grid2D, Problem};

    /// Eq. 12 at the paper's operating point: S = 16 gathers 8 points
    /// per fragment load, so a 64×64 grid costs 64·64/8 = 512 loads.
    #[test]
    fn eq12_fragment_loads_are_an_eighth_of_the_points() {
        let k = kernels::box_2d49p(); // radius 3: S = 16, no fusion
        let pred = predict_lora(&k, &[64, 64], 1, ExecConfig::full());
        assert_eq!(pred.shared_load_requests, 64 * 64 / 8);
        let out = LoRaStencil::new()
            .execute(&Problem::new(k, Grid2D::from_fn(64, 64, |r, c| (r * c) as f64), 1))
            .unwrap();
        assert_eq!(out.counters.shared_load_requests, 512);
    }

    /// Eq. 16 at the paper's operating point: rank-3 Box2D49P costs
    /// 3 · (4·2 + 4) = 36 MMAs per 8×8 tile.
    #[test]
    fn eq16_mma_count_for_box49() {
        let k = kernels::box_2d49p();
        let pred = predict_lora(&k, &[64, 64], 1, ExecConfig::full());
        assert_eq!(pred.mma_ops, 64 * 36);
        let out = LoRaStencil::new()
            .execute(&Problem::new(k, Grid2D::from_fn(64, 64, |r, c| (r + c) as f64), 1))
            .unwrap();
        assert_eq!(out.counters.mma_ops, 64 * 36);
    }

    /// Eq. 13 at the paper's operating point: 2⌈49/4⌉ = 26 fragments
    /// (= MMAs) per chunk; at h = 3 one chunk covers an 8×8 tile.
    #[test]
    fn eq13_convstencil_fragments_for_box49() {
        let k = kernels::box_2d49p();
        assert_eq!(predict_convstencil_mma(&k, &[64, 64], 1), 64 * 26);
        let out = ConvStencil::new()
            .execute(&Problem::new(k, Grid2D::from_fn(64, 64, |r, c| (r + c) as f64), 1))
            .unwrap();
        assert_eq!(out.counters.mma_ops, 64 * 26);
    }

    /// Fig. 9: BVS eliminates every shuffle; the natural split pays
    /// 2 shuffles per accumulator half (4·cb per term per tile).
    #[test]
    fn bvs_is_shuffle_free_and_the_natural_split_is_not() {
        let k = kernels::box_2d49p();
        let bvs = predict_lora(&k, &[64, 64], 1, ExecConfig::full());
        assert_eq!(bvs.shuffle_ops, 0);
        let nat =
            predict_lora(&k, &[64, 64], 1, ExecConfig { use_bvs: false, ..ExecConfig::full() });
        // 64 tiles · 3 terms · 4·(16/8) shuffles
        assert_eq!(nat.shuffle_ops, 64 * 3 * 8);
    }

    /// The generalized forms survive fusion: Heat2D (radius 1) fuses 3×
    /// into a radius-3 kernel with the same S = 16 geometry.
    #[test]
    fn fusion_split_prediction_matches_measurement() {
        let k = kernels::heat_2d();
        for iters in [1, 2, 3, 4, 5, 6, 7] {
            let pred = predict_lora(&k, &[24, 40], iters, ExecConfig::full());
            let out = LoRaStencil::new()
                .execute(&Problem::new(
                    k.clone(),
                    Grid2D::from_fn(24, 40, |r, c| (r * 7 + c) as f64 * 0.01),
                    iters,
                ))
                .unwrap();
            assert!(
                pred.compare(&out.counters).is_empty(),
                "iters {iters}: {:?}",
                pred.compare(&out.counters)
            );
        }
    }

    fn sparse_cfg() -> ExecConfig {
        ExecConfig { backend: DeviceBackend::SparseTcu, allow_fusion: false, ..ExecConfig::full() }
    }

    fn measure(k: &StencilKernel, rows: usize, cols: usize, cfg: ExecConfig) -> PerfCounters {
        LoRaStencil::with_config(cfg)
            .execute(&Problem::new(
                k.clone(),
                Grid2D::from_fn(rows, cols, |r, c| (r * 5 + c) as f64 * 0.01),
                1,
            ))
            .unwrap()
            .counters
    }

    /// Sparse closed form on full tiles, to the digit: Heat2D's star
    /// decomposition has `u = e_c` (one nonzero per banded row) and
    /// `u = [w, 0, w]` (two nonzeros two apart) — both 2:4-compressible,
    /// so per tile each term charges `rb·cb` mma.sp + `rb` dense step-2
    /// MMAs + `rb` metadata loads (S = 16: rb = 4, cb = 2).
    #[test]
    fn sparse_closed_form_full_tiles_heat2d() {
        let k = kernels::heat_2d();
        let pred = predict_lora(&k, &[16, 16], 1, sparse_cfg());
        let tiles = 4;
        assert_eq!(pred.mma_sp_ops, tiles * 2 * 4 * 2);
        assert_eq!(pred.mma_ops, tiles * 2 * 4);
        assert_eq!(pred.metadata_loads, tiles * 2 * 4);
        let m = measure(&k, 16, 16, sparse_cfg());
        assert!(pred.compare(&m).is_empty(), "{:?}", pred.compare(&m));
    }

    /// Same forms on a grid with partial tiles: counters charge per
    /// sub-tile (⌈R/8⌉⌈C/8⌉), not per covered point.
    #[test]
    fn sparse_closed_form_partial_tiles_heat2d() {
        let k = kernels::heat_2d();
        let pred = predict_lora(&k, &[20, 12], 1, sparse_cfg());
        let tiles = 3 * 2;
        assert_eq!(pred.mma_sp_ops, tiles * 2 * 4 * 2);
        assert_eq!(pred.mma_ops, tiles * 2 * 4);
        assert_eq!(pred.metadata_loads, tiles * 2 * 4);
        let m = measure(&k, 20, 12, sparse_cfg());
        assert!(pred.compare(&m).is_empty(), "{:?}", pred.compare(&m));
    }

    /// Mixed split: Star2D13P's `e_c` term compresses, but its 7-tap
    /// column term has six adjacent nonzeros per banded row — the 2:4
    /// validator rejects it and that term (alone) falls back to dense.
    #[test]
    fn sparse_split_is_per_term_star13() {
        let k = kernels::star_2d13p();
        let pred = predict_lora(&k, &[16, 16], 1, sparse_cfg());
        let tiles = 4;
        // sparse term: 8 mma.sp + 4 dense; dense term: mma_per_term = 12
        assert_eq!(pred.mma_sp_ops, tiles * 8);
        assert_eq!(pred.metadata_loads, tiles * 4);
        assert_eq!(pred.mma_ops, tiles * (4 + 12));
        let m = measure(&k, 16, 16, sparse_cfg());
        assert!(pred.compare(&m).is_empty(), "{:?}", pred.compare(&m));
    }

    /// Negative case: every Box2D49P term has a dense 7-tap `u`, so the
    /// sparse backend charges exactly the dense counters (and no sparse
    /// ones at all).
    #[test]
    fn sparse_backend_on_dense_terms_equals_dense_prediction() {
        let k = kernels::box_2d49p();
        let sparse = predict_lora(&k, &[16, 16], 1, sparse_cfg());
        let dense = predict_lora(
            &k,
            &[16, 16],
            1,
            ExecConfig { allow_fusion: false, ..ExecConfig::full() },
        );
        assert_eq!(sparse.mma_sp_ops, 0);
        assert_eq!(sparse.metadata_loads, 0);
        assert_eq!(sparse, dense);
        let m = measure(&k, 16, 16, sparse_cfg());
        assert!(sparse.compare(&m).is_empty(), "{:?}", sparse.compare(&m));
    }

    /// The SIMD backend charges no tensor-core work; its loads and
    /// writes follow the same forms as the scalar path.
    #[test]
    fn simd_backend_predicts_zero_mma_and_matches_measurement() {
        let k = kernels::box_2d49p();
        let cfg = ExecConfig { backend: DeviceBackend::SimdCore, ..ExecConfig::full() };
        let pred = predict_lora(&k, &[16, 16], 1, cfg);
        assert_eq!(pred.mma_ops, 0);
        assert_eq!(pred.mma_sp_ops, 0);
        let m = measure(&k, 16, 16, cfg);
        assert!(pred.compare(&m).is_empty(), "{:?}", pred.compare(&m));
    }

    #[test]
    fn check_counters_accepts_benchmark_kernels() {
        for k in kernels::all_kernels() {
            let extents = match k.dims() {
                1 => vec![130],
                2 => vec![17, 24],
                _ => vec![4, 9, 16],
            };
            let case = crate::gen::Case { kernel: k, extents, iterations: 2, data_seed: 3 };
            check_counters(&case).unwrap();
        }
    }
}

//! Metamorphic relations: properties any correct stencil implementation
//! must satisfy, checked without consulting the reference output.
//!
//! A stencil application is a linear, translation-equivariant operator on
//! a periodic grid, so for the executor `F` and any grids `x`, `y`:
//!
//! * **superposition + scaling**: `F(a·x + b·y) = a·F(x) + b·F(y)`,
//! * **translation equivariance**: `F(roll(x, s)) = roll(F(x), s)`
//!   (periodic boundaries make every translation exact),
//! * **step composition**: running `k` iterations in one call equals
//!   folding `k` single-iteration calls — *bitwise* when temporal fusion
//!   is disabled, because the executor is then literally the same
//!   ping-pong loop,
//! * **rank-truncation monotonicity**: the SVD used by the RDG
//!   decomposition yields partial sums whose Frobenius reconstruction
//!   error never increases as terms are added (Eckart–Young).

use lorastencil::decompose::svd::svd;
use lorastencil::{ExecConfig, LoRaStencil};
use stencil_core::{GridData, Problem, StencilExecutor, WeightMatrix};

use crate::gen::Case;
use crate::oracle::replay_hint;

/// Absolute tolerance for the fp-approximate relations (linearity,
/// translation). Inputs are bounded by 1 and kernels L1-normalized.
pub const META_TOL: f64 = 1e-9;

fn run(
    exec: &LoRaStencil,
    case: &Case,
    input: GridData,
    iterations: usize,
) -> Result<GridData, String> {
    let p = Problem::new(case.kernel.clone(), input, iterations);
    exec.execute(&p)
        .map(|o| o.output)
        .map_err(|e| format!("LoRAStencil refused a valid case: {e}\n{}", replay_hint()))
}

/// Check every metamorphic relation on `case`. `Err` carries the first
/// violated relation with measured deviation and a replay command.
pub fn check_relations(case: &Case) -> Result<(), String> {
    let exec = LoRaStencil::new();
    let x = case.input();
    // an independent second grid for superposition
    let y = Case { data_seed: case.data_seed ^ 0x9E37_79B9, ..case.clone() }.input();

    // -- superposition + scalar scaling -------------------------------
    // exact binary fractions keep the combination itself round-off free
    let (a, b) = (0.375, -0.5);
    let combined = run(&exec, case, x.scaled(a).added(&y.scaled(b)), case.iterations)?;
    let fx = run(&exec, case, x.clone(), case.iterations)?;
    let fy = run(&exec, case, y, case.iterations)?;
    let expect = fx.scaled(a).added(&fy.scaled(b));
    let diff = combined.max_abs_diff(&expect);
    if !(diff <= META_TOL) {
        return Err(format!(
            "superposition violated: |F(ax+by) - aF(x) - bF(y)| = {diff:.3e} (tol {META_TOL:.1e})\n{}",
            replay_hint()
        ));
    }

    // -- translation equivariance -------------------------------------
    let shift: Vec<isize> = match case.extents.len() {
        1 => vec![3],
        2 => vec![3, 5],
        _ => vec![1, 2, 3],
    };
    let rolled_then_run = run(&exec, case, x.rolled(&shift), case.iterations)?;
    let run_then_rolled = fx.rolled(&shift);
    let diff = rolled_then_run.max_abs_diff(&run_then_rolled);
    if !(diff <= META_TOL) {
        return Err(format!(
            "translation equivariance violated: shift {shift:?} deviates by {diff:.3e} \
             (tol {META_TOL:.1e})\n{}",
            replay_hint()
        ));
    }

    // -- step composition (bitwise without fusion) --------------------
    let nofuse = LoRaStencil::with_config(ExecConfig { allow_fusion: false, ..ExecConfig::full() });
    let batched = {
        let p = Problem::new(case.kernel.clone(), x.clone(), case.iterations);
        nofuse.execute(&p).map_err(|e| e.to_string())?.output
    };
    let mut stepped = x.clone();
    for _ in 0..case.iterations {
        let p = Problem::new(case.kernel.clone(), stepped, 1);
        stepped = nofuse.execute(&p).map_err(|e| e.to_string())?.output;
    }
    let diff = batched.max_abs_diff(&stepped);
    if diff != 0.0 {
        return Err(format!(
            "step composition violated: {} unfused iterations differ bitwise from {} single \
             steps (max |Δ| = {diff:.3e})\n{}",
            case.iterations,
            case.iterations,
            replay_hint()
        ));
    }

    // -- rank-truncation monotonicity (2-D kernels) -------------------
    if case.extents.len() == 2 {
        check_rank_truncation(case.kernel.weights_2d())?;
    }

    Ok(())
}

/// Frobenius norm of `a - b`.
fn frob_diff(a: &WeightMatrix, b: &WeightMatrix) -> f64 {
    a.sub(b).as_slice().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// SVD partial-sum reconstruction errors are non-increasing in the term
/// count and end below the decomposition tolerance.
pub fn check_rank_truncation(w: &WeightMatrix) -> Result<(), String> {
    let d = svd(w, 1e-12);
    let mut acc = WeightMatrix::zero(w.n());
    if d.pointwise != 0.0 {
        // the point-wise tip is applied before any rank-1 term
        let h = (w.n() - 1) / 2;
        acc.set(h, h, d.pointwise);
    }
    let mut prev = frob_diff(&acc, w);
    for (i, term) in d.terms.iter().enumerate() {
        acc = acc.add(&term.to_matrix().embed_centered(w.n()));
        let err = frob_diff(&acc, w);
        if err > prev + 1e-9 {
            return Err(format!(
                "rank truncation not monotone: error grew from {prev:.3e} to {err:.3e} at \
                 term {}/{}\n{}",
                i + 1,
                d.terms.len(),
                replay_hint()
            ));
        }
        prev = err;
    }
    if prev > 1e-8 {
        return Err(format!(
            "SVD reconstruction incomplete: final Frobenius error {prev:.3e} with {} terms\n{}",
            d.terms.len(),
            replay_hint()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::CaseGen;
    use foundation::prop::Gen;
    use foundation::rng::Xoshiro256pp;

    #[test]
    fn relations_hold_on_sampled_cases() {
        let mut rng = Xoshiro256pp::seed_from_u64(0x4E7A);
        for _ in 0..4 {
            let case = CaseGen.generate(&mut rng);
            check_relations(&case).unwrap();
        }
    }

    #[test]
    fn rank_truncation_holds_for_benchmark_kernels() {
        for k in stencil_core::kernels::all_kernels().into_iter().filter(|k| k.dims() == 2) {
            check_rank_truncation(k.weights_2d()).unwrap();
        }
    }

    #[test]
    fn rank_truncation_rejects_a_growing_error() {
        // sanity: the check actually fires — a matrix the SVD cannot
        // finish within its tolerance budget is impossible here, so
        // instead verify the exact-reconstruction clause on a full-rank
        // random matrix (it must pass: SVD keeps all terms)
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let w = WeightMatrix::from_vec(5, (0..25).map(|_| rng.range_f64(-1.0, 1.0)).collect());
        check_rank_truncation(&w).unwrap();
    }
}

//! The `lorastencil` binary. See [`stencil_cli`] for the subcommand
//! implementations.

use stencil_cli::args::{parse, parse_size};
use stencil_cli::{
    analyze_text, apply_backend, backend_token, codegen_text, emit_text, find_method,
    install_tuning_db, list_text, parse_checkpoint_every, parse_checkpoint_keep, parse_config,
    parse_target, profile_report, resolve_kernel, resume_report, run_checkpointed_report,
    run_report, trace_text, tune_report, usage, validate_trace,
};

fn real_main() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n");
            eprint!("{}", usage());
            return Err(String::new()); // already reported
        }
    };

    match args.command.as_str() {
        "help" => print!("{}", usage()),
        "list" => print!("{}", list_text()),
        "analyze" => {
            let h: u64 =
                args.opt("radius", "3").parse().map_err(|e| format!("bad --radius: {e}"))?;
            print!("{}", analyze_text(h.clamp(1, 16)));
        }
        "emit" => {
            let kernel = resolve_kernel(args.opt("spec", ""), args.opt("kernel", ""))?;
            let config =
                apply_backend(parse_config(args.opt("config", "full"))?, args.opt("backend", ""))?;
            let target = parse_target(args.opt("target", "cuda"))?;
            print!("{}", emit_text(&kernel, config, target)?);
        }
        "emit-cuda" | "codegen" => {
            eprintln!("note: `{}` is a deprecated alias for `emit --target cuda`", args.command);
            let kernel = resolve_kernel(args.opt("spec", ""), args.opt("kernel", ""))?;
            let config =
                apply_backend(parse_config(args.opt("config", "full"))?, args.opt("backend", ""))?;
            print!("{}", codegen_text(&kernel, config)?);
        }
        "trace" => {
            let kernel = resolve_kernel(args.opt("spec", ""), args.opt("kernel", ""))?;
            let config =
                apply_backend(parse_config(args.opt("config", "full"))?, args.opt("backend", ""))?;
            print!("{}", trace_text(&kernel, config)?);
        }
        "run" => {
            let kernel = resolve_kernel(args.opt("spec", ""), args.opt("kernel", ""))?;
            let config =
                apply_backend(parse_config(args.opt("config", "full"))?, args.opt("backend", ""))?;
            let method =
                find_method(args.opt("method", "LoRAStencil"), config).ok_or_else(|| {
                    format!("unknown method {:?} (try `list`)", args.opt("method", ""))
                })?;
            let default_size = match kernel.dims() {
                1 => "4096".to_string(),
                2 => "128x128".to_string(),
                _ => "8x32x32".to_string(),
            };
            let dims = parse_size(args.opt("size", &default_size))?;
            let iters: usize =
                args.opt("iters", "1").parse().map_err(|e| format!("bad --iters: {e}"))?;
            let seed: u64 =
                args.opt("seed", "42").parse().map_err(|e| format!("bad --seed: {e}"))?;
            let tuning_db = args.opt("tuning-db", "");
            if !tuning_db.is_empty() {
                print!("{}", install_tuning_db(tuning_db)?);
            }
            let ckpt_dir = args.opt("checkpoint-dir", "");
            if ckpt_dir.is_empty() {
                if args.options.contains_key("checkpoint-every")
                    || args.options.contains_key("checkpoint-keep")
                {
                    return Err(
                        "--checkpoint-every/--checkpoint-keep need --checkpoint-dir <dir>".into()
                    );
                }
                print!(
                    "{}",
                    run_report(
                        &kernel,
                        method.as_ref(),
                        &dims,
                        iters,
                        seed,
                        args.flag("verify"),
                        args.opt("load", ""),
                        args.opt("save", ""),
                        args.opt("trace-out", ""),
                    )?
                );
            } else {
                if !args.opt("load", "").is_empty() || !args.opt("save", "").is_empty() {
                    return Err("--checkpoint-dir does not combine with --load/--save \
                                (resume restores state from the snapshot directory)"
                        .into());
                }
                let every = parse_checkpoint_every(args.opt("checkpoint-every", "1"))?;
                let keep = parse_checkpoint_keep(args.opt("checkpoint-keep", "3"))?;
                print!(
                    "{}",
                    run_checkpointed_report(
                        &kernel,
                        config,
                        args.opt("method", "LoRAStencil"),
                        &dims,
                        iters,
                        seed,
                        args.flag("verify"),
                        ckpt_dir,
                        every,
                        keep,
                    )?
                );
            }
        }
        "resume" => {
            let dir = args.opt("checkpoint-dir", "");
            if dir.is_empty() {
                return Err("resume needs --checkpoint-dir <dir>".into());
            }
            let keep = parse_checkpoint_keep(args.opt("checkpoint-keep", "3"))?;
            print!("{}", resume_report(dir, keep, args.flag("verify"))?);
        }
        "profile" => {
            let kernel = resolve_kernel(args.opt("spec", ""), args.opt("kernel", ""))?;
            let config = apply_backend(Default::default(), args.opt("backend", ""))?;
            let method =
                find_method(args.opt("method", "LoRAStencil"), config).ok_or_else(|| {
                    format!("unknown method {:?} (try `list`)", args.opt("method", ""))
                })?;
            let default_size = match kernel.dims() {
                1 => "4096".to_string(),
                2 => "128x128".to_string(),
                _ => "8x32x32".to_string(),
            };
            let dims = parse_size(args.opt("size", &default_size))?;
            let iters: usize =
                args.opt("iters", "1").parse().map_err(|e| format!("bad --iters: {e}"))?;
            let seed: u64 =
                args.opt("seed", "42").parse().map_err(|e| format!("bad --seed: {e}"))?;
            let tuning_db = args.opt("tuning-db", "");
            if !tuning_db.is_empty() {
                print!("{}", install_tuning_db(tuning_db)?);
            }
            print!(
                "{}",
                profile_report(
                    &kernel,
                    method.as_ref(),
                    &dims,
                    iters,
                    seed,
                    args.opt("trace-out", "trace.json"),
                )?
            );
        }
        "tune" => {
            let kernel = resolve_kernel(args.opt("spec", ""), args.opt("kernel", ""))?;
            let config =
                apply_backend(parse_config(args.opt("config", "full"))?, args.opt("backend", ""))?;
            let default_size = match kernel.dims() {
                1 => "4096".to_string(),
                2 => "128x128".to_string(),
                _ => "8x32x32".to_string(),
            };
            let dims = parse_size(args.opt("size", &default_size))?;
            let iters: usize =
                args.opt("iters", "3").parse().map_err(|e| format!("bad --iters: {e}"))?;
            let seed: u64 =
                args.opt("seed", "42").parse().map_err(|e| format!("bad --seed: {e}"))?;
            let budget: usize =
                args.opt("budget", "24").parse().map_err(|e| format!("bad --budget: {e}"))?;
            if budget == 0 {
                return Err("--budget must measure at least one candidate \
                            (try --budget 8 for a quick search)"
                    .into());
            }
            let reps: usize =
                args.opt("reps", "5").parse().map_err(|e| format!("bad --reps: {e}"))?;
            print!(
                "{}",
                tune_report(
                    &kernel,
                    config,
                    &dims,
                    iters,
                    seed,
                    budget,
                    reps,
                    args.opt("db", "tuning.json"),
                )?
            );
        }
        "validate-trace" => {
            let path = args.opt("load", "");
            if path.is_empty() {
                return Err("validate-trace needs --load <file>".into());
            }
            print!("{}", validate_trace(path)?);
        }
        "serve" => {
            let tuning_db = args.opt("tuning-db", "");
            if !tuning_db.is_empty() {
                print!("{}", install_tuning_db(tuning_db)?);
            }
            let num = |key: &str, default: &str| -> Result<usize, String> {
                args.opt(key, default).parse().map_err(|e| format!("bad --{key}: {e}"))
            };
            let cfg = stencil_cli::serve::ServeConfig {
                batch_max: num("batch", "1")?.max(1),
                batch_wait_us: num("batch-wait-us", "200")? as u64,
                max_queue: num("max-queue", "64")?.max(1),
                cache_capacity: num("plan-cache", "32")?,
                max_conns: num("max-conns", "32")?.max(1),
                tune_budget: num("tune-budget", "4")?,
                backend: backend_token(args.opt("backend", ""))?,
            };
            let opts = stencil_cli::serve::ServeOptions {
                socket: args.opt("socket", "").to_string(),
                tcp: args.opt("tcp", "").to_string(),
                cfg,
            };
            print!("{}", stencil_cli::serve::serve(opts)?);
        }
        "submit" => {
            print!(
                "{}",
                stencil_cli::serve::submit(
                    args.opt("socket", ""),
                    args.opt("tcp", ""),
                    args.opt("frame", ""),
                )?
            );
        }
        other => {
            eprint!("unknown subcommand {other}\n\n{}", usage());
            return Err(String::new()); // already reported
        }
    }
    Ok(())
}

fn main() {
    if let Err(e) = real_main() {
        // parse failures print themselves (with usage) before returning;
        // subcommand failures surface here
        if !e.is_empty() {
            eprintln!("error: {e}");
        }
        std::process::exit(2);
    }
}

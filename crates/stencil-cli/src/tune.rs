//! The `tune` subcommand: empirical schedule search over the
//! [`ScheduleParams`] space with a persistent winners DB.
//!
//! Per `(kernel, extents, config)` the tuner enumerates the candidate
//! grid (tile extents × staging × MMA-chain batch × fusion override),
//! orders it by a cost prior seeded from [`lorastencil::autotune`]'s
//! per-tile pricing, caps it at `--budget` candidates (the default
//! schedule is always kept), and measures the survivors with
//! [`foundation::bench::median_sample_ns`].
//!
//! **The bit-identity gate:** before a candidate is timed at all, its
//! output planes and `Prediction`-class counters are compared against
//! the default schedule's; any divergence rejects the candidate. A
//! schedule is allowed to be *faster*, never *different* — so
//! installing a tuning DB can never change a test outcome. In practice
//! this rejects almost every `fuse_override` candidate (fusion changes
//! the executed arithmetic), which is exactly the point of keeping the
//! override in the space: the gate, not the enumerator, is the
//! authority on semantic neutrality.
//!
//! Winners are merged into the versioned JSON DB at `--db` with the
//! atomic-rename discipline of [`lorastencil::tuning::TuningDb::save`];
//! an existing DB that fails to decode is a hard error (never tune
//! from garbage).

use foundation::bench::{median_sample_ns, WallClock};
use lorastencil::checkpoint::grid_to_planes;
use lorastencil::schedule::{self, ScheduleParams, Staging};
use lorastencil::tuning::{TuningDb, TuningEntry};
use lorastencil::{ExecConfig, Plan, PlaneOp};
use stencil_core::StencilKernel;
use tcu_sim::{GlobalArray, PerfCounters};

/// Enumerate every candidate [`ScheduleParams`] worth trying for this
/// problem: tile extents clamped to the grid (a job larger than the
/// grid is the same schedule as one exactly covering it), staging only
/// where the lowering can honor it, batch widths up to the chain cap,
/// and the fusion override only where the planner fuses at all.
pub fn candidate_space(
    kernel: &StencilKernel,
    config: ExecConfig,
    extents: &[usize],
) -> Vec<ScheduleParams> {
    let plan = Plan::new(kernel, config);
    let clamp = |e: usize| e.div_ceil(8) * 8;
    let (row_cap, col_cap) = match *extents {
        [n] => (8, clamp(n.div_ceil(8))),
        [r, c] => (clamp(r), clamp(c)),
        [_, y, x] => (clamp(y), clamp(x)),
        _ => unreachable!("extents are 1-, 2- or 3-long"),
    };
    let tiles = [8usize, 16, 32, 64];
    let rows: Vec<usize> = if kernel.dims() == 1 {
        vec![8] // 1-D jobs are tile_cols-driven; tile_rows is inert
    } else {
        tiles.iter().copied().filter(|&t| t == 8 || t <= row_cap).collect()
    };
    let cols: Vec<usize> = tiles.iter().copied().filter(|&t| t == 8 || t <= col_cap).collect();
    let stagings: &[Staging] = if kernel.dims() >= 2 && config.use_tcu() {
        &[Staging::Single, Staging::Double]
    } else {
        &[Staging::Single]
    };
    let batches = [1usize, 2, 4, 8, 16];
    let fuses: Vec<Option<usize>> = if config.allow_fusion && kernel.dims() < 3 && plan.fusion > 1 {
        vec![None, Some(1)]
    } else {
        vec![None]
    };
    let mut out = Vec::new();
    for &tile_rows in &rows {
        for &tile_cols in &cols {
            for &staging in stagings {
                for &mma_batch in &batches {
                    for &fuse_override in &fuses {
                        let p = ScheduleParams {
                            tile_rows,
                            tile_cols,
                            staging,
                            mma_batch,
                            fuse_override,
                        };
                        debug_assert!(p.validate().is_ok());
                        out.push(p);
                    }
                }
            }
        }
    }
    out
}

/// The search prior: a cheap synthetic cost that orders candidates
/// most-promising-first before the budget cut. Per-sub-tile compute is
/// anchored on the same pricing [`lorastencil::autotune::tile_cost`]
/// uses (MMA flops per 8×8 tile); on top of that the prior charges a
/// fixed per-job dispatch overhead (fewer, larger jobs win on a
/// single-core host), the staged-window traffic (macro tiles amortize
/// halo staging), and a per-chain issue overhead that batching divides
/// down. Fusion overrides below the planner's depth multiply the
/// application count.
pub fn prior_cost(
    p: &ScheduleParams,
    kernel: &StencilKernel,
    extents: &[usize],
    plan: &Plan,
) -> u64 {
    // Calibrated against the executor benches on the reference host
    // (single core, thin-LTO build): one unit ≈ one MMA-FLOP ≈ 0.4 ns.
    const C_JOB: u64 = 800; // dispatch + context + staging reset per job
    const C_CELL: u64 = 2; // staged window cell (memcpy + accounting)
    const C_ISSUE: u64 = 60; // MMA chain issue (monomorphized chains)
    const C_FLOP: u64 = 1; // anchored compute
    let halo = (plan.geo.s - 8) as u64;
    // per-8×8-sub-tile MMA count and flops, by dimensionality
    let (sub_mma, jobs, window_cells, subtiles) = match *extents {
        [n] => {
            let mma = (plan.seg_len() / 4) as u64;
            let chunk = 8 * p.tile_cols;
            let jobs = n.div_ceil(chunk) as u64;
            let subtiles = n.div_ceil(64) as u64;
            (mma, jobs, jobs * (chunk as u64 + 2 * kernel.radius as u64), subtiles)
        }
        [r, c] => {
            let mma = plan.decomp().num_terms() as u64 * plan.geo.mma_per_term();
            let jr = r.div_ceil(p.tile_rows) as u64;
            let jc = c.div_ceil(p.tile_cols) as u64;
            let window = (p.tile_rows as u64 + halo) * (p.tile_cols as u64 + halo);
            let subtiles = (r.div_ceil(8) * c.div_ceil(8)) as u64;
            (mma, jr * jc, jr * jc * window, subtiles)
        }
        [nz, ny, nx] => {
            let (mut mma, mut staged_planes) = (0u64, 0u64);
            for op in plan.plane_ops() {
                if let PlaneOp::Rdg(d) = op {
                    mma += d.num_terms() as u64 * plan.geo.mma_per_term();
                    staged_planes += 1;
                }
            }
            let jr = ny.div_ceil(p.tile_rows) as u64;
            let jc = nx.div_ceil(p.tile_cols) as u64;
            let jobs = nz as u64 * jr * jc;
            let window = (p.tile_rows as u64 + halo) * (p.tile_cols as u64 + halo);
            let subtiles = (nz * ny.div_ceil(8) * nx.div_ceil(8)) as u64;
            (mma, jobs, jobs * window * staged_planes.max(1), subtiles)
        }
        _ => unreachable!("extents are 1-, 2- or 3-long"),
    };
    let flops = sub_mma * tcu_sim::FLOPS_PER_MMA;
    let chains = sub_mma.div_ceil(p.mma_batch as u64);
    // Staging mode is deliberately cost-neutral here: on a parallel host
    // double buffering overlaps halo loads with the live slot's chains,
    // on a serial one it only moves slot indices — either way the
    // measurement, not the prior, decides.
    let staging_cost = window_cells * C_CELL;
    let mut cost = jobs * C_JOB + staging_cost + subtiles * (flops * C_FLOP + chains * C_ISSUE);
    if let Some(f) = p.fuse_override {
        if f < plan.fusion {
            cost = cost.saturating_mul(plan.fusion as u64) / f.max(1) as u64;
        }
    }
    cost
}

/// The counter fields a schedule must keep invariant (the `Prediction`
/// class of the counter model). Keep in sync with `invariants` in
/// `stencil-verify`'s params_grid module.
fn invariant_counters(c: &PerfCounters) -> [u64; 7] {
    [
        c.mma_ops,
        c.mma_sp_ops,
        c.metadata_loads,
        c.shared_load_requests,
        c.shuffle_ops,
        c.global_bytes_written,
        c.points_updated,
    ]
}

/// Bitwise plane equality — `f64::to_bits`, so `-0.0 != 0.0` and NaN
/// payloads count.
fn planes_bit_identical(a: &[GlobalArray], b: &[GlobalArray]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.rows() == y.rows()
                && x.cols() == y.cols()
                && x.as_slice().iter().zip(y.as_slice()).all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

/// On-miss service tuning: the serve daemon's cold-plan path. When a
/// job shape has no tuning-DB entry, run a bounded, prior-ordered
/// search — the same candidate space and bit-identity gate as the
/// `tune` subcommand, minus the persistent DB and the report — and
/// return the winning [`ScheduleParams`] for the plan cache to
/// memoize. `budget <= 1` (or a search where nothing beats it) returns
/// the default schedule; the gate guarantees whatever wins produces
/// values and invariant counters bit-identical to the default, so
/// tuned cache entries can never change a job's answer.
pub fn tune_on_miss(
    kernel: &StencilKernel,
    config: ExecConfig,
    extents: &[usize],
    seed: u64,
    iters: usize,
    budget: usize,
) -> ScheduleParams {
    let default = ScheduleParams::default();
    if budget <= 1 {
        return default;
    }
    // measure a short job: scheduling quality is shape-driven, not
    // iteration-count-driven, and misses must stay bounded
    let iters = iters.clamp(1, 2);
    let input = crate::make_grid(extents, seed);
    let planes = grid_to_planes(&input);
    let run_params =
        |p: ScheduleParams| schedule::run_tuned(kernel, config, p, planes.clone(), iters);
    let (def_planes, def_counters, _) = run_params(default);
    let def_inv = invariant_counters(&def_counters);

    let plan = Plan::new(kernel, config);
    let mut cands = candidate_space(kernel, config, extents);
    cands.sort_by_key(|p| prior_cost(p, kernel, extents, &plan));
    cands.retain(|p| *p != default);
    cands.truncate(budget - 1);
    cands.insert(0, default);

    let mut clock = WallClock::new();
    let mut best = (default, u64::MAX);
    for p in cands {
        let (out, counters, _) = run_params(p);
        if !planes_bit_identical(&out, &def_planes) || invariant_counters(&counters) != def_inv {
            continue;
        }
        let ns = median_sample_ns(&mut clock, 2, || run_params(p));
        if ns < best.1 {
            best = (p, ns);
        }
    }
    best.0
}

/// The `tune` subcommand body: search, gate, measure, persist, report.
#[allow(clippy::too_many_arguments)]
pub fn tune_report(
    kernel: &StencilKernel,
    config: ExecConfig,
    dims: &[usize],
    iters: usize,
    seed: u64,
    budget: usize,
    reps: usize,
    db_path: &str,
) -> Result<String, String> {
    let dims = &crate::broadcast_dims(dims, kernel.dims())[..];
    if dims.len() != kernel.dims() {
        return Err(format!(
            "kernel {} is {}-D but --size has {} dims",
            kernel.name,
            kernel.dims(),
            dims.len()
        ));
    }
    // load-or-create the DB *before* measuring anything: an existing
    // but undecodable DB is a hard error, never silently replaced
    let path = std::path::Path::new(db_path);
    let mut db = if path.exists() {
        TuningDb::load(path).map_err(|e| e.to_string())?
    } else {
        TuningDb::new()
    };

    let input = crate::make_grid(dims, seed);
    let planes = grid_to_planes(&input);
    let run_params =
        |p: ScheduleParams| schedule::run_tuned(kernel, config, p, planes.clone(), iters);
    let default = ScheduleParams::default();
    let (def_planes, def_counters, _) = run_params(default);
    let def_inv = invariant_counters(&def_counters);

    let plan = Plan::new(kernel, config);
    let mut cands = candidate_space(kernel, config, dims);
    let total_space = cands.len();
    cands.sort_by_key(|p| prior_cost(p, kernel, dims, &plan));
    cands.retain(|p| *p != default);
    cands.truncate(budget.max(1) - 1);
    cands.insert(0, default);

    let mut report = format!(
        "tuning LoRAStencil({}) on {} {:?} for {} iterations\n\
         candidate space: {} schedules, measuring {} (budget {}), {} reps each\n\n",
        config.tag(),
        kernel.name,
        dims,
        iters,
        total_space,
        cands.len(),
        budget,
        reps,
    );
    let mut clock = WallClock::new();
    let mut best: Option<(ScheduleParams, u64)> = None;
    let mut default_ns = 0u64;
    let mut rejected = 0usize;
    let mut lines = Vec::new();
    for p in cands {
        let (out, counters, _) = run_params(p);
        if !planes_bit_identical(&out, &def_planes) {
            rejected += 1;
            lines.push(format!(
                "  {:<24} rejected: output diverges bitwise from the default schedule",
                p.describe()
            ));
            continue;
        }
        if invariant_counters(&counters) != def_inv {
            rejected += 1;
            lines.push(format!(
                "  {:<24} rejected: modeled counters diverge from the default schedule",
                p.describe()
            ));
            continue;
        }
        let ns = median_sample_ns(&mut clock, reps, || run_params(p));
        if p == default {
            default_ns = ns;
        }
        if best.map_or(true, |(_, b)| ns < b) {
            best = Some((p, ns));
        }
        let speedup = if default_ns > 0 && ns > 0 {
            format!("  {:>6.2}x", default_ns as f64 / ns as f64)
        } else {
            String::new()
        };
        lines.push(format!("  {:<24} median {:>12} ns{speedup}", p.describe(), ns));
    }
    report.push_str(&lines.join("\n"));
    report.push('\n');
    let (win, win_ns) = best.expect("the default schedule is always measured");

    // winner phase breakdown (host-side attribution of the choice)
    foundation::obs::reset();
    foundation::obs::enable();
    let t0 = std::time::Instant::now();
    let _ = run_params(win);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    foundation::obs::disable();
    foundation::obs::drain();
    let breakdown = foundation::obs::phase_breakdown();
    report.push_str(&format!("\nwinner: {} at {} ns median ", win.describe(), win_ns));
    if default_ns > 0 {
        report.push_str(&format!(
            "({:.2}x vs default {} ns, {rejected} candidates rejected by the identity gate)\n",
            default_ns as f64 / win_ns.max(1) as f64,
            default_ns
        ));
    } else {
        report.push('\n');
    }
    report.push_str(&foundation::obs::render_breakdown(&breakdown, wall_ns));

    db.insert(
        kernel,
        dims,
        config,
        TuningEntry {
            kernel: kernel.name.clone(),
            extents: dims.to_vec(),
            config: config.tag(),
            params: win,
            best_ns: win_ns,
            default_ns,
        },
    );
    db.save(path).map_err(|e| format!("{db_path}: {e}"))?;
    report.push_str(&format!("\ntuning DB {db_path} updated ({} entries)\n", db.len()));
    Ok(report)
}

/// Install the DB at `path` process-wide for `run`/`profile`
/// (`--tuning-db`). A nonexistent path is a hard error with the fix
/// spelled out — silently running untuned on a typo'd path would defeat
/// the flag's whole purpose (the `--checkpoint-every 0` precedent).
pub fn install_tuning_db(path: &str) -> Result<String, String> {
    let p = std::path::Path::new(path);
    if !p.exists() {
        return Err(format!(
            "--tuning-db {path} does not exist \
             (run `lorastencil tune --kernel <name> --db {path}` to create it first)"
        ));
    }
    let db = TuningDb::load(p).map_err(|e| e.to_string())?;
    let n = db.len();
    lorastencil::tuning::install_global(db);
    Ok(format!("tuning DB {path} installed ({n} entries)\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_kernel;

    #[test]
    fn candidate_space_clamps_tiles_to_the_grid() {
        let k = find_kernel("Box-2D9P").unwrap();
        let space = candidate_space(&k, ExecConfig::full(), &[16, 16]);
        assert!(space.iter().all(|p| p.tile_rows <= 16 && p.tile_cols <= 16), "{space:?}");
        assert!(space.contains(&ScheduleParams::default()));
        // a big grid opens the full tile range and the fusion override
        let wide = candidate_space(&k, ExecConfig::full(), &[128, 128]);
        assert!(wide.iter().any(|p| p.tile_rows == 64 && p.tile_cols == 64));
        assert!(wide.iter().any(|p| p.fuse_override == Some(1)));
        assert!(wide.iter().any(|p| p.staging == Staging::Double));
        for p in &wide {
            p.validate().unwrap();
        }
    }

    #[test]
    fn prior_prefers_fewer_jobs_on_big_grids() {
        let k = find_kernel("Box-2D9P").unwrap();
        let plan = Plan::new(&k, ExecConfig::full());
        let small = ScheduleParams::default();
        let big = ScheduleParams { tile_rows: 64, tile_cols: 64, ..ScheduleParams::default() };
        assert!(
            prior_cost(&big, &k, &[128, 128], &plan) < prior_cost(&small, &k, &[128, 128], &plan)
        );
        // and batching beats unbatched at equal tiling
        let batched = ScheduleParams { mma_batch: 8, ..big };
        assert!(
            prior_cost(&batched, &k, &[128, 128], &plan) < prior_cost(&big, &k, &[128, 128], &plan)
        );
    }

    #[test]
    fn tune_writes_a_db_the_run_path_can_install() {
        let dir = std::env::temp_dir().join("lorastencil-cli-tune");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let db_path = dir.join("tuning.json");
        let dbs = db_path.to_str().unwrap();
        let k = find_kernel("Box-2D9P").unwrap();
        let r = tune_report(&k, ExecConfig::full(), &[48, 48], 2, 7, 6, 3, dbs).unwrap();
        assert!(r.contains("winner:"), "{r}");
        assert!(r.contains("tuning DB"), "{r}");
        let db = TuningDb::load(&db_path).unwrap();
        assert_eq!(db.len(), 1);
        let (_, entry) = db.iter().next().unwrap();
        assert_eq!(entry.kernel, "Box-2D9P");
        assert_eq!(entry.extents, vec![48, 48]);
        entry.params.validate().unwrap();
        // a second tune at other extents merges, not replaces
        let r2 = tune_report(&k, ExecConfig::full(), &[24, 24], 2, 7, 4, 3, dbs).unwrap();
        assert!(r2.contains("2 entries"), "{r2}");
        assert_eq!(TuningDb::load(&db_path).unwrap().len(), 2);
        // and the install path accepts what tune wrote
        let msg = install_tuning_db(dbs).unwrap();
        assert!(msg.contains("2 entries"), "{msg}");
        lorastencil::tuning::clear_global();
    }

    #[test]
    fn tune_on_miss_returns_gated_params_within_budget() {
        let k = find_kernel("Box-2D49P").unwrap();
        // budget 1 never measures: straight to defaults
        assert_eq!(
            tune_on_miss(&k, ExecConfig::full(), &[16, 16], 7, 1, 1),
            ScheduleParams::default()
        );
        // a real budget returns params the identity gate accepted: the
        // winner must reproduce the default schedule's output bitwise
        let p = tune_on_miss(&k, ExecConfig::full(), &[16, 16], 7, 1, 4);
        p.validate().unwrap();
        let input = crate::make_grid(&[16, 16], 7);
        let planes = grid_to_planes(&input);
        let (want, wc, _) = schedule::run_tuned(
            &k,
            ExecConfig::full(),
            ScheduleParams::default(),
            planes.clone(),
            1,
        );
        let (got, gc, _) = schedule::run_tuned(&k, ExecConfig::full(), p, planes, 1);
        assert!(planes_bit_identical(&got, &want), "winner {} diverges", p.describe());
        assert_eq!(invariant_counters(&gc), invariant_counters(&wc));
    }

    #[test]
    fn nonexistent_tuning_db_is_a_hard_error_with_a_suggestion() {
        let e = install_tuning_db("/does/not/exist/tuning.json").unwrap_err();
        assert!(e.contains("does not exist"), "{e}");
        assert!(e.contains("lorastencil tune"), "{e}");
        // and a corrupt DB is the tuning layer's typed error, not a panic
        let dir = std::env::temp_dir().join("lorastencil-cli-tune-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.json");
        std::fs::write(&p, "{\"version\": \"lorastencil-tuning-v1\", ").unwrap();
        let e = install_tuning_db(p.to_str().unwrap()).unwrap_err();
        assert!(e.contains("corrupt"), "{e}");
        // tune refuses to overwrite a garbage DB too
        let k = find_kernel("Box-2D9P").unwrap();
        let e = tune_report(&k, ExecConfig::full(), &[24, 24], 1, 7, 2, 1, p.to_str().unwrap())
            .unwrap_err();
        assert!(e.contains("corrupt"), "{e}");
    }

    #[test]
    fn fuse_override_candidates_fall_to_the_identity_gate() {
        // Heat-2D fuses 3×: overriding to 1 changes the arithmetic, so
        // the gate must reject it rather than let it win on time
        let dir = std::env::temp_dir().join("lorastencil-cli-tune-gate");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dbs = dir.join("t.json");
        let k = find_kernel("Heat-2D").unwrap();
        let r = tune_report(
            &k,
            ExecConfig::full(),
            &[32, 32],
            3,
            7,
            usize::MAX,
            1,
            dbs.to_str().unwrap(),
        )
        .unwrap();
        assert!(r.contains("rejected"), "{r}");
        let db = TuningDb::load(&dbs).unwrap();
        let params = db.lookup(&k, &[32, 32], ExecConfig::full()).unwrap();
        assert_eq!(params.fuse_override, None, "a gated candidate must never be persisted");
    }
}

//! The serve job protocol: one JSON object per line, decoded by a
//! hand-written **borrowing, non-recursive** scanner.
//!
//! The daemon parses untrusted bytes on its hot path, which imposes two
//! requirements [`foundation::json::Json::parse`] cannot meet:
//!
//! * **Zero allocation** on well-formed frames — a [`Frame`] borrows
//!   every string straight out of the input line, so a cache-hit request
//!   stays allocation-free end to end (`tests/steady_state.rs`).
//! * **No recursion** — the decoder walks a fixed, flat grammar (one
//!   object of known keys; the only nesting is the `size` array), so a
//!   hostile 100k-deep frame fails on its second byte instead of
//!   consuming stack. (General documents get the same protection from
//!   the depth guard in `foundation::json`; the serve path never even
//!   gets that far.)
//!
//! Every rejection is a typed [`ProtoError`] carrying the byte offset of
//! the offending token, which the server echoes back verbatim — the
//! fuzz battery (`tests/serve_protocol.rs`) holds the protocol to that
//! contract for every malformed-input class it can generate.

/// What a frame asks the server to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Execute a stencil job (the default).
    Run,
    /// Report server statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Stop accepting work and exit.
    Shutdown,
}

/// How much of the output grid the response carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValuesMode {
    /// CRC-32 of the output bits plus sum/min/max (the default).
    Digest,
    /// The digest and the full value array (small grids only).
    Full,
    /// Digest suppressed too; counters and profile only.
    None,
}

/// One decoded job frame. String fields borrow the input line.
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    pub op: OpKind,
    /// Accounting bucket for per-tenant metrics.
    pub tenant: &'a str,
    /// Kernel name (as `stencil-cli run --kernel` accepts it).
    pub kernel: &'a str,
    /// Named preset supplying kernel/size/iters/config instead.
    pub scenario: &'a str,
    /// Grid extents; only `ndims` leading entries are meaningful.
    pub size: [usize; 3],
    pub ndims: usize,
    /// Time steps; `None` means "frame did not say" (scenario default).
    pub iters: Option<usize>,
    pub seed: u64,
    /// `ExecConfig` toggle spec (`"full"`, `"no-bvs,no-async"`, …).
    pub config: &'a str,
    pub values: ValuesMode,
    /// Bitmask of keys the frame actually carried (KEYS order), so the
    /// server can tell an explicit `"config":"full"` from the default —
    /// scenarios reject explicit overrides of what they preset.
    seen: u32,
}

impl Frame<'_> {
    /// Whether the frame explicitly carried `key`.
    pub fn has(&self, key: &str) -> bool {
        KEYS.iter().position(|k| *k == key).is_some_and(|i| self.seen & (1 << i) != 0)
    }
}

/// A typed frame rejection: machine-readable kind, byte offset into the
/// line, human-readable detail. The only part of the protocol allowed to
/// allocate — errors are off the steady-state path by definition.
#[derive(Debug)]
pub struct ProtoError {
    /// `"parse"` (malformed JSON), `"frame"` (well-formed but not a
    /// valid job) or `"limit"` (structurally fine, rejected for size).
    pub kind: &'static str,
    /// Byte offset of the offending token within the line.
    pub offset: usize,
    pub detail: String,
}

impl ProtoError {
    fn new(kind: &'static str, offset: usize, detail: impl Into<String>) -> Self {
        ProtoError { kind, offset, detail: detail.into() }
    }
}

/// Largest accepted grid (points per job): bounds the daemon's per-job
/// memory to a few hundred MB no matter what a client asks for.
pub const MAX_POINTS: usize = 1 << 22;
/// Largest accepted extent along one axis.
pub const MAX_DIM: usize = 1 << 20;
/// Largest accepted iteration count per job.
pub const MAX_ITERS: usize = 4096;
/// Longest accepted string field (tenant/kernel/scenario/config).
pub const MAX_STR: usize = 128;
/// Past this many output points, `"values":"full"` is refused.
pub const MAX_FULL_VALUES: usize = 1 << 16;

/// The frame keys, in bitmask order (for duplicate detection).
const KEYS: &[&str] =
    &["id", "op", "tenant", "kernel", "scenario", "size", "iters", "seed", "config", "values"];

/// Decode one line into a [`Frame`]. Allocation-free on success.
pub fn parse_frame(line: &str) -> Result<Frame<'_>, ProtoError> {
    let mut c = Cursor { s: line, b: line.as_bytes(), pos: 0 };
    let mut f = Frame {
        id: None,
        op: OpKind::Run,
        tenant: "anon",
        kernel: "",
        scenario: "",
        size: [0; 3],
        ndims: 0,
        iters: None,
        seed: 42,
        config: "full",
        values: ValuesMode::Digest,
        seen: 0,
    };
    c.skip_ws();
    c.expect(b'{', "a JSON object (every job frame is one object per line)")?;
    let mut seen: u32 = 0;
    c.skip_ws();
    if c.peek() != Some(b'}') {
        loop {
            c.skip_ws();
            let key_at = c.pos;
            let key = c.string("an object key")?;
            let Some(idx) = KEYS.iter().position(|k| *k == key) else {
                return Err(ProtoError::new(
                    "frame",
                    key_at,
                    format!("unknown key \"{key}\" (keys: {})", KEYS.join(", ")),
                ));
            };
            if seen & (1 << idx) != 0 {
                return Err(ProtoError::new("frame", key_at, format!("duplicate key \"{key}\"")));
            }
            seen |= 1 << idx;
            c.skip_ws();
            c.expect(b':', "':' after the key")?;
            c.skip_ws();
            match key {
                "id" => f.id = Some(c.uint("id", u64::MAX)?),
                "op" => {
                    let at = c.pos;
                    f.op = match c.string("op")? {
                        "run" => OpKind::Run,
                        "stats" => OpKind::Stats,
                        "ping" => OpKind::Ping,
                        "shutdown" => OpKind::Shutdown,
                        other => {
                            return Err(ProtoError::new(
                                "frame",
                                at,
                                format!("unknown op \"{other}\" (run, stats, ping, shutdown)"),
                            ))
                        }
                    };
                }
                "tenant" => f.tenant = c.capped_string("tenant")?,
                "kernel" => f.kernel = c.capped_string("kernel")?,
                "scenario" => f.scenario = c.capped_string("scenario")?,
                "config" => f.config = c.capped_string("config")?,
                "size" => (f.size, f.ndims) = c.size()?,
                "iters" => f.iters = Some(c.uint("iters", MAX_ITERS as u64)? as usize),
                "seed" => f.seed = c.uint("seed", u64::MAX)?,
                "values" => {
                    let at = c.pos;
                    f.values = match c.string("values")? {
                        "digest" => ValuesMode::Digest,
                        "full" => ValuesMode::Full,
                        "none" => ValuesMode::None,
                        other => {
                            return Err(ProtoError::new(
                                "frame",
                                at,
                                format!("unknown values mode \"{other}\" (digest, full, none)"),
                            ))
                        }
                    };
                }
                _ => unreachable!("KEYS is exhaustive"),
            }
            c.skip_ws();
            match c.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => {
                    return Err(ProtoError::new(
                        "parse",
                        c.pos.saturating_sub(1).min(line.len()),
                        "expected ',' or '}'",
                    ))
                }
            }
        }
    } else {
        c.pos += 1; // the '}' of an empty object
    }
    c.skip_ws();
    if c.pos < c.b.len() {
        return Err(ProtoError::new("parse", c.pos, "trailing bytes after the frame"));
    }
    f.seen = seen;
    // cross-field shape checks (only Run carries a job)
    if f.op == OpKind::Run {
        if !f.kernel.is_empty() && !f.scenario.is_empty() {
            return Err(ProtoError::new(
                "frame",
                0,
                "\"kernel\" and \"scenario\" are mutually exclusive",
            ));
        }
        if f.kernel.is_empty() && f.scenario.is_empty() {
            return Err(ProtoError::new(
                "frame",
                0,
                "a run frame needs \"kernel\" or \"scenario\"",
            ));
        }
        if !f.kernel.is_empty() && f.ndims == 0 {
            return Err(ProtoError::new(
                "frame",
                0,
                "\"kernel\" jobs need an explicit \"size\" (scenarios carry their own)",
            ));
        }
    }
    Ok(f)
}

/// Flat, iterative scanner over one frame line.
struct Cursor<'a> {
    s: &'a str,
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8, what: &str) -> Result<(), ProtoError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ProtoError::new("parse", self.pos, format!("expected {what}")))
        }
    }

    /// A JSON string **without escapes** (frame fields are plain names;
    /// refusing `\` keeps decoding a borrow instead of a copy).
    fn string(&mut self, what: &str) -> Result<&'a str, ProtoError> {
        let start = self.pos;
        if self.next() != Some(b'"') {
            return Err(ProtoError::new("frame", start, format!("{what} must be a string")));
        }
        let body = self.pos;
        loop {
            match self.next() {
                Some(b'"') => return Ok(&self.s[body..self.pos - 1]),
                Some(b'\\') => {
                    return Err(ProtoError::new(
                        "frame",
                        self.pos - 1,
                        "escape sequences are not allowed in job frames",
                    ))
                }
                Some(c) if c < 0x20 => {
                    return Err(ProtoError::new(
                        "parse",
                        self.pos - 1,
                        "control byte inside a string",
                    ))
                }
                Some(_) => {}
                None => {
                    return Err(ProtoError::new("parse", self.pos, "unterminated string"));
                }
            }
        }
    }

    fn capped_string(&mut self, what: &str) -> Result<&'a str, ProtoError> {
        let at = self.pos;
        let s = self.string(what)?;
        if s.len() > MAX_STR {
            return Err(ProtoError::new("limit", at, format!("{what} exceeds {MAX_STR} bytes")));
        }
        Ok(s)
    }

    /// An unsigned decimal integer with overflow and range checks.
    /// Signs, fractions and exponents are refused — a frame that says
    /// `1e99` iterations is asking for trouble, not precision.
    fn uint(&mut self, what: &str, max: u64) -> Result<u64, ProtoError> {
        let start = self.pos;
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(ProtoError::new(
                "frame",
                start,
                format!("{what} must be an unsigned integer"),
            ));
        }
        let mut v: u64 = 0;
        while let Some(c @ b'0'..=b'9') = self.peek() {
            v = v.checked_mul(10).and_then(|v| v.checked_add((c - b'0') as u64)).ok_or_else(
                || ProtoError::new("limit", start, format!("{what} overflows 64 bits")),
            )?;
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(ProtoError::new(
                "frame",
                start,
                format!("{what} must be a plain unsigned integer"),
            ));
        }
        if v > max {
            return Err(ProtoError::new("limit", start, format!("{what} exceeds the limit {max}")));
        }
        Ok(v)
    }

    /// The `size` value: `[64,64]` or the CLI spelling `"64x64"`.
    /// Validates dimension count, per-axis bounds, and the total-point
    /// cap so one frame cannot OOM the daemon.
    fn size(&mut self) -> Result<([usize; 3], usize), ProtoError> {
        let at = self.pos;
        let mut dims = [0usize; 3];
        let mut n = 0;
        match self.peek() {
            Some(b'[') => {
                self.pos += 1;
                loop {
                    self.skip_ws();
                    if n == 3 {
                        return Err(ProtoError::new(
                            "limit",
                            self.pos,
                            "size has more than 3 dims",
                        ));
                    }
                    dims[n] = self.uint("size entry", MAX_DIM as u64)? as usize;
                    n += 1;
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => break,
                        _ => {
                            return Err(ProtoError::new(
                                "parse",
                                self.pos.saturating_sub(1).min(self.b.len()),
                                "expected ',' or ']' in size",
                            ))
                        }
                    }
                }
            }
            Some(b'"') => {
                let spec = self.string("size")?;
                let mut it = spec.split('x');
                for part in it.by_ref() {
                    if n == 3 {
                        return Err(ProtoError::new("limit", at, "size has more than 3 dims"));
                    }
                    let mut v: u64 = 0;
                    if part.is_empty() || !part.bytes().all(|c| c.is_ascii_digit()) {
                        return Err(ProtoError::new(
                            "frame",
                            at,
                            format!("bad size spec \"{spec}\" (want N, NxM or NxMxK)"),
                        ));
                    }
                    for c in part.bytes() {
                        v = v
                            .checked_mul(10)
                            .and_then(|v| v.checked_add((c - b'0') as u64))
                            .ok_or_else(|| {
                                ProtoError::new("limit", at, "size entry overflows 64 bits")
                            })?;
                    }
                    if v > MAX_DIM as u64 {
                        return Err(ProtoError::new(
                            "limit",
                            at,
                            format!("size entry exceeds the limit {MAX_DIM}"),
                        ));
                    }
                    dims[n] = v as usize;
                    n += 1;
                }
            }
            _ => {
                return Err(ProtoError::new(
                    "frame",
                    at,
                    "size must be an array like [64,64] or a string like \"64x64\"",
                ))
            }
        }
        if n == 0 || dims[..n].contains(&0) {
            return Err(ProtoError::new("frame", at, "size needs 1-3 positive dims"));
        }
        let points = dims[..n].iter().try_fold(1usize, |a, &d| a.checked_mul(d));
        match points {
            Some(p) if p <= MAX_POINTS => Ok((dims, n)),
            _ => Err(ProtoError::new("limit", at, format!("grid exceeds {MAX_POINTS} points"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_run_frame() {
        let f = parse_frame(r#"{"kernel":"Box-2D9P","size":[64,64]}"#).unwrap();
        assert_eq!(f.op, OpKind::Run);
        assert_eq!(f.kernel, "Box-2D9P");
        assert_eq!((f.size, f.ndims), ([64, 64, 0], 2));
        assert_eq!(f.iters, None);
        assert_eq!(f.seed, 42);
        assert_eq!(f.values, ValuesMode::Digest);
    }

    #[test]
    fn full_frame_and_string_size() {
        let f = parse_frame(
            r#"{"id":7,"op":"run","tenant":"t0","kernel":"heat3d","size":"4x8x16","iters":3,"seed":1,"config":"no-bvs","values":"full"}"#,
        )
        .unwrap();
        assert_eq!(f.id, Some(7));
        assert_eq!((f.size, f.ndims), ([4, 8, 16], 3));
        assert_eq!(f.iters, Some(3));
        assert_eq!(f.config, "no-bvs");
        assert_eq!(f.values, ValuesMode::Full);
    }

    #[test]
    fn control_frames_need_no_job_fields() {
        assert_eq!(parse_frame(r#"{"op":"ping"}"#).unwrap().op, OpKind::Ping);
        assert_eq!(parse_frame(r#"{"op":"stats","id":1}"#).unwrap().op, OpKind::Stats);
        assert_eq!(parse_frame(r#"{"op":"shutdown"}"#).unwrap().op, OpKind::Shutdown);
    }

    #[test]
    fn typed_errors_carry_offsets() {
        // (frame text, expected kind, substring of detail)
        let cases: &[(&str, &str, &str)] = &[
            ("", "parse", "job frame"),
            ("[1,2]", "parse", "job frame"),
            (r#"{"kernel":"x","size":[8]}extra"#, "parse", "trailing"),
            (r#"{"kernel":"x" "size":[8]}"#, "parse", "expected ','"),
            (r#"{"kern":"x"}"#, "frame", "unknown key"),
            (r#"{"kernel":"a","kernel":"b"}"#, "frame", "duplicate key"),
            (r#"{"kernel":7}"#, "frame", "must be a string"),
            (r#"{"iters":"many"}"#, "frame", "unsigned integer"),
            (r#"{"iters":1.5}"#, "frame", "plain unsigned integer"),
            (r#"{"seed":99999999999999999999999}"#, "limit", "overflows"),
            (r#"{"iters":100000,"kernel":"x","size":[8]}"#, "limit", "exceeds the limit"),
            (r#"{"kernel":"x","size":[0]}"#, "frame", "positive dims"),
            (r#"{"kernel":"x","size":[4096,4096]}"#, "limit", "points"),
            (r#"{"kernel":"x","size":{"r":4}}"#, "frame", "size must be an array"),
            (r#"{"kernel":"x","size":[[8]]}"#, "frame", "unsigned integer"),
            (r#"{"kernel":"a\nb","size":[8]}"#, "frame", "escape sequences"),
            (r#"{"op":"dance"}"#, "frame", "unknown op"),
            (r#"{"kernel":"x","size":[8],"scenario":"y"}"#, "frame", "mutually exclusive"),
            (r#"{}"#, "frame", "needs \"kernel\" or \"scenario\""),
            (r#"{"kernel":"x"}"#, "frame", "explicit \"size\""),
            (r#"{"kernel":"unterminated"#, "parse", "unterminated"),
        ];
        for (text, kind, needle) in cases {
            let e = parse_frame(text).unwrap_err();
            assert_eq!(e.kind, *kind, "{text}: {}", e.detail);
            assert!(e.detail.contains(needle), "{text}: {}", e.detail);
            assert!(e.offset <= text.len(), "{text}: offset {} out of range", e.offset);
        }
    }

    #[test]
    fn deep_nesting_fails_fast_without_recursion() {
        // a general JSON parser would recurse here; the frame scanner
        // rejects the first unexpected bracket
        let deep = format!("{}\"x\"{}", "[".repeat(100_000), "]".repeat(100_000));
        let e = parse_frame(&deep).unwrap_err();
        assert_eq!((e.kind, e.offset), ("parse", 0));
        let deep_val = format!(r#"{{"size":{}1{}}}"#, "[".repeat(100_000), "]".repeat(100_000));
        let e = parse_frame(&deep_val).unwrap_err();
        assert!(e.offset <= deep_val.len());
    }
}

//! The concurrent plan cache: the daemon's whole reason to exist.
//!
//! Planning a job — tuning-DB lookup, low-rank decomposition, schedule
//! lowering, fragment pre-building, plane allocation — costs orders of
//! magnitude more than executing a small grid. The cache keys on
//! (normalized kernel name, extents, `ExecConfig` bits) and holds, per
//! entry, a small pool of ready [`ExecSession`]s so concurrent clients
//! of the same job shape each check out a warm session without
//! re-planning. `BENCH_pr8.json`'s hit/cold throughput ratio is this
//! module's acceptance test.
//!
//! Keying subtlety: [`ScheduleParams`] is **not** part of the key even
//! though it shapes the lowered schedule — params are an *output* of
//! planning (tuning-DB hit or defaults), fully determined by the key
//! triple, so caching them per entry is exactly the memoization the
//! tuning DB wants. Schedule-neutrality (PR 7) guarantees values and
//! counters cannot depend on which params a DB revision picked.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use lorastencil::{ExecConfig, ExecSession, ScheduleParams};
use stencil_core::StencilKernel;

/// Sessions retained per entry: enough for a healthy worker pool's
/// concurrency, small enough that an entry stays a few grids big.
const POOL_MAX: usize = 16;

/// How long a single-flight waiter parks before it gives up on the
/// leader and plans redundantly (see [`PlanCache::lead_or_wait`]).
/// Generous against a slow legitimate plan (an on-miss tune of a big
/// grid), tiny against an actual wedge.
const TAKEOVER: std::time::Duration = std::time::Duration::from_millis(250);

/// One cached (kernel, extents, config) shape.
pub struct CacheEntry {
    /// Normalized kernel name (the hash-collision tiebreaker).
    norm_kernel: String,
    extents: [usize; 3],
    ndims: usize,
    config_bits: u64,
    /// The resolved kernel, kept so pool refills skip the registry scan.
    pub kernel: StencilKernel,
    /// Params planning resolved to (tuning DB or defaults) — surfaced in
    /// `stats` so operators can see which shapes run tuned.
    pub params: ScheduleParams,
    config: ExecConfig,
    /// Warm sessions ready to check out.
    pool: Mutex<Vec<ExecSession>>,
    /// Logical LRU stamp (global request counter at last use).
    last_used: AtomicU64,
    /// Jobs served from this entry.
    pub hits: AtomicU64,
}

impl CacheEntry {
    /// Grid extents (only `ndims` leading entries meaningful).
    pub fn extents(&self) -> &[usize] {
        &self.extents[..self.ndims]
    }

    /// Sessions currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.lock().unwrap().len()
    }
}

/// Normalized-name equality without allocating: case-insensitive,
/// `-`/`_` stripped — the same tolerance [`crate::find_kernel`] gives
/// the offline CLI.
fn norm_eq(raw: &str, canonical_norm: &str) -> bool {
    let mut it = canonical_norm.bytes();
    for b in raw.bytes() {
        if b == b'-' || b == b'_' {
            continue;
        }
        if it.next() != Some(b.to_ascii_lowercase()) {
            return false;
        }
    }
    it.next().is_none()
}

fn norm_name(raw: &str) -> String {
    raw.bytes()
        .filter(|b| *b != b'-' && *b != b'_')
        .map(|b| b.to_ascii_lowercase() as char)
        .collect()
}

/// FNV-1a over the normalized key fields. Allocation-free.
fn key_hash(kernel_raw: &str, extents: &[usize; 3], ndims: usize, config_bits: u64) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut eat = |b: u8| h = (h ^ b as u64).wrapping_mul(PRIME);
    for b in kernel_raw.bytes() {
        if b != b'-' && b != b'_' {
            eat(b.to_ascii_lowercase());
        }
    }
    eat(0xff);
    eat(ndims as u8);
    for &e in &extents[..ndims] {
        for byte in (e as u64).to_le_bytes() {
            eat(byte);
        }
    }
    for byte in config_bits.to_le_bytes() {
        eat(byte);
    }
    h
}

/// The cache key hash of a shape — the value [`Checkout::Miss`] carries
/// and [`PlanCache::lead_or_wait`] elects on. Public so the dispatcher's
/// pre-plan pass can run the election without a counting checkout.
pub fn shape_hash(kernel_raw: &str, extents: &[usize; 3], ndims: usize, config: ExecConfig) -> u64 {
    key_hash(kernel_raw, extents, ndims, config.bits())
}

/// What a lookup produced.
pub enum Checkout {
    /// Warm entry; the session is ready to fill and run.
    Hit(Arc<CacheEntry>, ExecSession),
    /// No entry for this shape. The payload is the key hash: pass it to
    /// [`PlanCache::lead_or_wait`] to elect a single planner, then plan
    /// and [`PlanCache::insert`] (leader) or retry the checkout (waiter).
    Miss(u64),
}

/// Held by the one thread planning a missed shape. Dropping it — after
/// [`PlanCache::insert`], on an error return, or during a panic unwind —
/// wakes every thread parked in [`PlanCache::lead_or_wait`].
pub struct PlanPermit<'a> {
    cache: Option<&'a PlanCache>,
    h: u64,
}

impl Drop for PlanPermit<'_> {
    fn drop(&mut self) {
        if let Some(cache) = self.cache {
            let mut inflight = cache.inflight.lock().unwrap();
            if let Some(i) = inflight.iter().position(|&x| x == self.h) {
                inflight.swap_remove(i);
            }
            cache.inflight_cv.notify_all();
        }
    }
}

/// The cache proper: hash buckets of entries (same-hash entries verify
/// full fields, so collisions degrade to a scan, never to wrong plans)
/// under one `RwLock` — reads (the hit path) share the lock.
pub struct PlanCache {
    map: RwLock<HashMap<u64, Vec<Arc<CacheEntry>>>>,
    capacity: usize,
    /// Monotonic request stamp driving LRU eviction.
    clock: AtomicU64,
    /// Key hashes whose plan construction is in flight (single-flight
    /// election state for the miss path).
    inflight: Mutex<Vec<u64>>,
    inflight_cv: Condvar,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    /// Misses that waited for a concurrent planner instead of planning
    /// the same shape twice (the thundering herd the single-flight gate
    /// absorbed).
    pub coalesced: AtomicU64,
    /// Waiters that outlived [`TAKEOVER`] and planned redundantly (the
    /// deadlock backstop firing — should stay 0 in healthy operation).
    pub takeovers: AtomicU64,
}

impl PlanCache {
    /// `capacity` is the entry budget; 0 disables caching entirely
    /// (every job re-plans — the load generator's "cold" arm).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            map: RwLock::new(HashMap::new()),
            capacity,
            clock: AtomicU64::new(0),
            inflight: Mutex::new(Vec::new()),
            inflight_cv: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            takeovers: AtomicU64::new(0),
        }
    }

    /// Single-flight election for a missed key: returns `Some(permit)`
    /// when this caller is the shape's designated planner, or blocks
    /// until the current planner finishes and returns `None` — the
    /// caller then retries [`PlanCache::checkout`] and (normally) hits
    /// the entry the leader just published. If the leader failed and
    /// published nothing, the retry misses and the next election seats
    /// a new leader, so errors never strand waiters.
    ///
    /// With `capacity == 0` there is no shared entry for waiters to
    /// reuse, so every caller leads (a no-op permit): the cold arm of
    /// the load generator must measure *concurrent* re-planning, not a
    /// serialized queue behind one planner.
    ///
    /// **Deadlock backstop.** A waiter parked here could, in principle,
    /// sit *above the leader on the same stack*: the worker pool's join
    /// loop help-drains any queued lane, so a leader whose planning runs
    /// nested parallel work can pick up a sibling job that then waits on
    /// this very election — a wait no notify can ever end. The batched
    /// dispatcher avoids the scenario by pre-planning every shape before
    /// its fused dispatch, but as a guarantee rather than a convention,
    /// a waiter that outlives [`TAKEOVER`] stops waiting and plans
    /// redundantly (a no-op permit). Redundant planning is wasted work,
    /// never a wrong answer: the tuner's bit-identity gate keeps every
    /// winner value- and invariant-counter-neutral.
    pub fn lead_or_wait(&self, h: u64) -> Option<PlanPermit<'_>> {
        if self.capacity == 0 {
            return Some(PlanPermit { cache: None, h });
        }
        let mut inflight = self.inflight.lock().unwrap();
        if !inflight.contains(&h) {
            inflight.push(h);
            return Some(PlanPermit { cache: Some(self), h });
        }
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        while inflight.contains(&h) {
            let (guard, res) = self.inflight_cv.wait_timeout(inflight, TAKEOVER).unwrap();
            inflight = guard;
            if res.timed_out() && inflight.contains(&h) {
                self.takeovers.fetch_add(1, Ordering::Relaxed);
                return Some(PlanPermit { cache: None, h });
            }
        }
        None
    }

    /// Allocation-free read-only probe: is this shape cached? Unlike
    /// [`PlanCache::checkout`] it touches no counters and no LRU stamp —
    /// the dispatcher's pre-plan pass uses it to find the shapes a batch
    /// is missing without double-counting every batched job as a hit.
    pub fn contains(
        &self,
        kernel_raw: &str,
        extents: &[usize; 3],
        ndims: usize,
        config: ExecConfig,
    ) -> bool {
        let h = key_hash(kernel_raw, extents, ndims, config.bits());
        let map = self.map.read().unwrap();
        map.get(&h).is_some_and(|bucket| {
            bucket.iter().any(|entry| {
                entry.ndims == ndims
                    && entry.extents == *extents
                    && entry.config_bits == config.bits()
                    && norm_eq(kernel_raw, &entry.norm_kernel)
            })
        })
    }

    /// Hit-path lookup: allocation-free when it returns
    /// [`Checkout::Hit`] with a pooled session.
    pub fn checkout(
        &self,
        kernel_raw: &str,
        extents: &[usize; 3],
        ndims: usize,
        config: ExecConfig,
    ) -> Checkout {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let h = key_hash(kernel_raw, extents, ndims, config.bits());
        let map = self.map.read().unwrap();
        let Some(bucket) = map.get(&h) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Checkout::Miss(h);
        };
        for entry in bucket {
            if entry.ndims == ndims
                && entry.extents == *extents
                && entry.config_bits == config.bits()
                && norm_eq(kernel_raw, &entry.norm_kernel)
            {
                entry.last_used.store(stamp, Ordering::Relaxed);
                entry.hits.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                let pooled = entry.pool.lock().unwrap().pop();
                let session = pooled.unwrap_or_else(|| {
                    // pool drained by concurrent checkouts: build another
                    // session for this shape, pinned to the params the
                    // entry memoized (a DB or on-miss-tune winner must
                    // not be re-resolved per refill)
                    ExecSession::with_params(
                        &entry.kernel,
                        entry.config,
                        entry.extents(),
                        entry.params,
                    )
                });
                return Checkout::Hit(Arc::clone(entry), session);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Checkout::Miss(h)
    }

    /// Register a freshly planned shape. Returns the entry to check the
    /// session back into. With `capacity == 0` no entry is stored: the
    /// returned entry is free-floating and the session dies with it.
    pub fn insert(
        &self,
        kernel: StencilKernel,
        extents: [usize; 3],
        ndims: usize,
        config: ExecConfig,
        params: ScheduleParams,
    ) -> Arc<CacheEntry> {
        let entry = Arc::new(CacheEntry {
            norm_kernel: norm_name(&kernel.name),
            extents,
            ndims,
            config_bits: config.bits(),
            kernel,
            params,
            config,
            pool: Mutex::new(Vec::with_capacity(POOL_MAX)),
            last_used: AtomicU64::new(self.clock.load(Ordering::Relaxed)),
            hits: AtomicU64::new(0),
        });
        if self.capacity == 0 {
            return entry;
        }
        let h = key_hash(&entry.kernel.name, &extents, ndims, entry.config_bits);
        let mut map = self.map.write().unwrap();
        let bucket = map.entry(h).or_default();
        // a racing miss may have inserted the same shape; keep the first
        if !bucket
            .iter()
            .any(|e| e.ndims == ndims && e.extents == extents && e.config_bits == entry.config_bits)
        {
            bucket.push(Arc::clone(&entry));
        }
        // LRU eviction by stamp scan (entry counts are small — the
        // capacity bounds memory, not lookup cost)
        let mut total: usize = map.values().map(Vec::len).sum();
        while total > self.capacity {
            let mut victim: Option<(u64, usize, u64)> = None;
            for (&bh, bucket) in map.iter() {
                for (i, e) in bucket.iter().enumerate() {
                    let used = e.last_used.load(Ordering::Relaxed);
                    if victim.map_or(true, |(_, _, best)| used < best) {
                        victim = Some((bh, i, used));
                    }
                }
            }
            let Some((bh, i, _)) = victim else { break };
            let bucket = map.get_mut(&bh).unwrap();
            bucket.swap_remove(i);
            if bucket.is_empty() {
                map.remove(&bh);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
            total -= 1;
        }
        entry
    }

    /// Park a session for reuse. Beyond [`POOL_MAX`] the session is
    /// dropped — bounded memory beats a marginally warmer pool.
    pub fn checkin(&self, entry: &CacheEntry, session: ExecSession) {
        let mut pool = entry.pool.lock().unwrap();
        if pool.len() < POOL_MAX {
            pool.push(session);
        }
    }

    /// Cached entries, for `stats`.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every entry, most-recently-used first (for `stats`).
    pub fn entries(&self) -> Vec<Arc<CacheEntry>> {
        let map = self.map.read().unwrap();
        let mut v: Vec<Arc<CacheEntry>> = map.values().flatten().cloned().collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.last_used.load(Ordering::Relaxed)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel2d() -> StencilKernel {
        stencil_core::kernels::by_name("Box-2D9P").unwrap()
    }

    fn entry_for(cache: &PlanCache, extents: [usize; 3]) -> Arc<CacheEntry> {
        let config = ExecConfig::default();
        let k = kernel2d();
        cache.insert(k, extents, 2, config, ScheduleParams::default())
    }

    #[test]
    fn checkout_hits_after_insert_and_pools_sessions() {
        let cache = PlanCache::new(8);
        let config = ExecConfig::default();
        let extents = [16, 16, 0];
        assert!(matches!(cache.checkout("Box-2D9P", &extents, 2, config), Checkout::Miss(_)));
        let entry = entry_for(&cache, extents);
        let session = ExecSession::new(&entry.kernel, config, entry.extents());
        cache.checkin(&entry, session);
        // hit via exact, case-sloppy, and separator-sloppy names
        for name in ["Box-2D9P", "box-2d9p", "BOX2D9P", "box_2d9p"] {
            match cache.checkout(name, &extents, 2, config) {
                Checkout::Hit(e, s) => cache.checkin(&e, s),
                Checkout::Miss(_) => panic!("{name} should hit"),
            }
        }
        assert_eq!(cache.hits.load(Ordering::Relaxed), 4);
        assert_eq!(cache.misses.load(Ordering::Relaxed), 1);
        // different shape or config -> miss
        assert!(matches!(cache.checkout("Box-2D9P", &[32, 16, 0], 2, config), Checkout::Miss(_)));
        let other = ExecConfig { use_bvs: false, ..config };
        assert!(matches!(cache.checkout("Box-2D9P", &extents, 2, other), Checkout::Miss(_)));
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let cache = PlanCache::new(2);
        let a = entry_for(&cache, [8, 8, 0]);
        let _b = entry_for(&cache, [16, 8, 0]);
        // touch `a` so the second insert's victim is `b`... the stamp of
        // an entry is its last checkout
        match cache.checkout(&a.kernel.name.clone(), &[8, 8, 0], 2, ExecConfig::default()) {
            Checkout::Hit(e, s) => cache.checkin(&e, s),
            Checkout::Miss(_) => panic!("a should hit"),
        }
        let _c = entry_for(&cache, [24, 8, 0]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions.load(Ordering::Relaxed), 1);
        // `a` survived, `b` was evicted
        assert!(matches!(
            cache.checkout("Box-2D9P", &[8, 8, 0], 2, ExecConfig::default()),
            Checkout::Hit(..)
        ));
        assert!(matches!(
            cache.checkout("Box-2D9P", &[16, 8, 0], 2, ExecConfig::default()),
            Checkout::Miss(_)
        ));
    }

    #[test]
    fn single_flight_elects_one_planner_and_coalesces_the_rest() {
        let cache = Arc::new(PlanCache::new(8));
        let h = key_hash("Box-2D9P", &[8, 8, 0], 2, ExecConfig::default().bits());
        let led = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let cache = Arc::clone(&cache);
                let led = Arc::clone(&led);
                s.spawn(move || {
                    if let Some(_permit) = cache.lead_or_wait(h) {
                        led.fetch_add(1, Ordering::Relaxed);
                        // hold the permit until the whole herd has piled
                        // up behind it — the election stays deterministic
                        // (the first mutex acquirer leads; every later one
                        // sees the in-flight key and coalesces)
                        while cache.coalesced.load(Ordering::Relaxed) < 5 {
                            std::thread::yield_now();
                        }
                    }
                    // waiters (None) retry in the real path; here they just
                    // prove they were released rather than stranded
                });
            }
        });
        assert_eq!(led.load(Ordering::Relaxed), 1, "exactly one planner per key");
        assert_eq!(cache.coalesced.load(Ordering::Relaxed), 5);
        // an unrelated key is never blocked by this key's election
        assert!(cache.lead_or_wait(h ^ 1).is_some());
        // zero-capacity caches never coalesce: every caller leads
        let cold = PlanCache::new(0);
        assert!(cold.lead_or_wait(h).is_some());
        assert!(cold.lead_or_wait(h).is_some());
        assert_eq!(cold.coalesced.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = PlanCache::new(0);
        let _e = entry_for(&cache, [8, 8, 0]);
        assert!(cache.is_empty());
        assert!(matches!(
            cache.checkout("Box-2D9P", &[8, 8, 0], 2, ExecConfig::default()),
            Checkout::Miss(_)
        ));
    }
}

//! Serve-side observability: process-wide counters/histograms from
//! [`foundation::obs`], plus per-tenant accounting.
//!
//! Handles to the named metrics are resolved once at server start (the
//! registry lookup scans a `Mutex<Vec>`; caching the `&'static`
//! references keeps the request path down to relaxed atomic adds).
//! Tenant stats live behind a `Mutex<HashMap>` — lookups by `&str`
//! allocate nothing once a tenant exists, so the steady-state guarantee
//! covers multi-tenant traffic too.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use foundation::json::{Json, ToJson};
use foundation::obs::{counter, histogram, Counter, Histogram};

/// Per-tenant accounting: request counts and a latency histogram.
pub struct TenantStats {
    pub jobs_ok: AtomicU64,
    pub jobs_err: AtomicU64,
    pub latency: Histogram,
}

impl TenantStats {
    fn new() -> Self {
        TenantStats {
            jobs_ok: AtomicU64::new(0),
            jobs_err: AtomicU64::new(0),
            latency: Histogram::new(),
        }
    }
}

/// All the daemon's metrics handles, resolved once.
pub struct ServerMetrics {
    /// Jobs answered successfully / with a typed error.
    pub jobs_ok: &'static Counter,
    pub jobs_err: &'static Counter,
    /// Plan-cache outcomes as seen by the request path.
    pub cache_hits: &'static Counter,
    pub cache_misses: &'static Counter,
    /// Batching: dispatches issued, jobs that rode in them, and jobs
    /// refused at admission (queue full).
    pub batches: &'static Counter,
    pub batched_jobs: &'static Counter,
    pub rejected: &'static Counter,
    /// End-to-end job latency (parse to response-ready).
    pub latency: &'static Histogram,
    tenants: Mutex<HashMap<String, Arc<TenantStats>>>,
}

impl ServerMetrics {
    pub fn new() -> Self {
        ServerMetrics {
            jobs_ok: counter("serve_jobs_ok"),
            jobs_err: counter("serve_jobs_err"),
            cache_hits: counter("serve_cache_hits"),
            cache_misses: counter("serve_cache_misses"),
            batches: counter("serve_batches"),
            batched_jobs: counter("serve_batched_jobs"),
            rejected: counter("serve_rejected"),
            latency: histogram("serve_latency"),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// The stats bucket for `tenant`, creating it on first sighting
    /// (the only allocating path; repeat tenants are a map lookup).
    pub fn tenant(&self, tenant: &str) -> Arc<TenantStats> {
        let mut map = self.tenants.lock().unwrap();
        if let Some(t) = map.get(tenant) {
            return Arc::clone(t);
        }
        let t = Arc::new(TenantStats::new());
        map.insert(tenant.to_string(), Arc::clone(&t));
        t
    }

    /// Record one finished job for global and tenant metrics.
    pub fn record(&self, tenant: &str, ok: bool, latency_ns: u64) {
        let t = self.tenant(tenant);
        if ok {
            self.jobs_ok.add(1);
            t.jobs_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.jobs_err.add(1);
            t.jobs_err.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record_ns(latency_ns);
        t.latency.record_ns(latency_ns);
    }

    /// Tenant table for the `stats` op (sorted by name for stable output).
    pub fn tenants_json(&self) -> Json {
        let map = self.tenants.lock().unwrap();
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        Json::Obj(
            names
                .into_iter()
                .map(|name| {
                    let t = &map[name];
                    (
                        name.clone(),
                        Json::obj([
                            ("jobs_ok", t.jobs_ok.load(Ordering::Relaxed).to_json()),
                            ("jobs_err", t.jobs_err.load(Ordering::Relaxed).to_json()),
                            ("p50_ns", t.latency.quantile_ns(0.5).to_json()),
                            ("p99_ns", t.latency.quantile_ns(0.99).to_json()),
                            ("max_ns", t.latency.max_ns().to_json()),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_by_tenant_and_outcome() {
        let m = ServerMetrics::new();
        // obs counters are process-global; measure deltas
        let ok0 = m.jobs_ok.get();
        m.record("alice", true, 1_000);
        m.record("alice", true, 3_000);
        m.record("bob", false, 9_000);
        assert_eq!(m.jobs_ok.get() - ok0, 2);
        let alice = m.tenant("alice");
        assert_eq!(alice.jobs_ok.load(Ordering::Relaxed), 2);
        assert_eq!(alice.jobs_err.load(Ordering::Relaxed), 0);
        assert!(alice.latency.quantile_ns(0.5) >= 1_000);
        let t = m.tenants_json();
        assert!(t.get("bob").and_then(|b| b.get("jobs_err")).is_some());
    }
}

//! `stencil-cli serve` — stencil computation as a service.
//!
//! A std-only daemon over Unix and/or TCP sockets speaking
//! newline-delimited JSON: one job frame in, one response line out (see
//! [`proto`] for the frame grammar, DESIGN.md §13 for the architecture).
//! The expensive part of a LoRAStencil job — planning — is amortized by
//! the [`cache`] module's concurrent plan cache; execution reuses warm
//! [`lorastencil::ExecSession`]s so a cache-hit request allocates zero
//! heap and spawns zero threads end to end.
//!
//! Multi-tenant batching: with `--batch N > 1`, run frames park in a
//! bounded queue and a dispatcher thread coalesces up to N of them into
//! one fused dispatch across the `foundation::par` worker pool. The
//! queue bound is the admission controller — a full queue answers
//! `overloaded` immediately instead of letting latency grow without
//! bound. Batched or not, a job's values and invariant counters are
//! bit-identical to the offline `stencil-cli run` path
//! (`tests/serve_determinism.rs`, plus the serve-smoke step in ci.sh).

pub mod cache;
pub mod metrics;
pub mod proto;

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{BufReader, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use foundation::json::{Json, NdjsonReader, ToJson};
use foundation::{crc::Crc32, par};
use lorastencil::{ExecConfig, ExecSession};

use cache::{Checkout, PlanCache};
use metrics::ServerMetrics;
use proto::{Frame, OpKind, ProtoError, ValuesMode, MAX_FULL_VALUES};

/// A named job preset: clients say `"scenario":"small-2d"` instead of
/// spelling out kernel/size/config (and the load generator drives the
/// same table, so service benchmarks are reproducible by name).
pub struct Scenario {
    pub name: &'static str,
    pub kernel: &'static str,
    pub size: [usize; 3],
    pub ndims: usize,
    pub iters: usize,
    pub config: &'static str,
    pub about: &'static str,
}

/// The built-in scenario table.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "smoke-1d",
        kernel: "1D5P",
        size: [4096, 0, 0],
        ndims: 1,
        iters: 4,
        config: "full",
        about: "1-D radius-2 line, the quickest end-to-end check",
    },
    Scenario {
        name: "small-2d",
        kernel: "Box-2D9P",
        size: [64, 64, 0],
        ndims: 2,
        iters: 2,
        config: "full",
        about: "small 2-D box kernel — the batching sweet spot",
    },
    Scenario {
        name: "heavy-2d",
        kernel: "Box-2D49P",
        size: [128, 128, 0],
        ndims: 2,
        iters: 2,
        config: "full",
        about: "radius-3 box kernel, the paper's headline shape",
    },
    Scenario {
        name: "ablation-2d",
        kernel: "Box-2D9P",
        size: [64, 64, 0],
        ndims: 2,
        iters: 2,
        config: "no-bvs,no-async",
        about: "2-D box with BVS and async-copy disabled",
    },
    Scenario {
        name: "slab-3d",
        kernel: "Heat-3D",
        size: [8, 32, 32],
        ndims: 3,
        iters: 2,
        config: "full",
        about: "small 3-D heat slab",
    },
];

/// Knobs of one server instance.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Jobs coalesced per dispatch; 1 executes inline on the
    /// connection's thread (no dispatcher, no queue).
    pub batch_max: usize,
    /// How long the dispatcher holds a non-full batch open for
    /// stragglers, µs.
    pub batch_wait_us: u64,
    /// Queue bound — admission control. A frame arriving at a full
    /// queue is answered `overloaded` without queuing.
    pub max_queue: usize,
    /// Plan-cache entry budget; 0 disables caching.
    pub cache_capacity: usize,
    /// Concurrent connections; excess connections get one `overloaded`
    /// line and are closed.
    pub max_conns: usize,
    /// Candidate budget for on-miss schedule tuning when the tuning DB
    /// has no entry for the job shape (see
    /// [`tune_on_miss`](crate::tune::tune_on_miss)); <= 1 skips the
    /// search and plans with default params.
    pub tune_budget: usize,
    /// Canonical `--backend` token (`""`, `"tcu"`, `"sparse"`, `"simd"`
    /// or `"no-tcu"`) applied as the default config of run frames that
    /// carry no explicit `config` field; empty keeps `"full"`. A
    /// frame's own `config` always wins — the flag sets the server
    /// default, it does not censor clients.
    pub backend: &'static str,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_max: 1,
            batch_wait_us: 200,
            max_queue: 64,
            cache_capacity: 32,
            max_conns: 32,
            tune_budget: 4,
            backend: "",
        }
    }
}

/// An owned, capacity-reusing copy of one run frame — what survives
/// after the borrowed [`Frame`] dies with its input line.
pub struct JobSpec {
    id: Option<u64>,
    tenant: String,
    kernel: String,
    config: String,
    extents: [usize; 3],
    ndims: usize,
    iters: usize,
    seed: u64,
    values: ValuesMode,
    recv: Instant,
    /// Set by the dispatcher's pre-plan pass when this job's shape was
    /// planned on its behalf (the batch's first sighting of the shape):
    /// the response then still reports `"cache":"miss"` and charges the
    /// plan time, so miss/hit semantics are identical with and without
    /// batching.
    fresh_plan: bool,
    plan_hint_ns: u64,
}

impl JobSpec {
    fn new() -> Self {
        JobSpec {
            id: None,
            tenant: String::new(),
            kernel: String::new(),
            config: String::new(),
            extents: [0; 3],
            ndims: 0,
            iters: 1,
            seed: 42,
            values: ValuesMode::Digest,
            recv: Instant::now(),
            fresh_plan: false,
            plan_hint_ns: 0,
        }
    }
}

fn set_str(dst: &mut String, src: &str) {
    dst.clear();
    dst.push_str(src);
}

/// One queued (or inline) job: the spec, the response it produced, and
/// the completion handshake. Each connection owns one slot and reuses
/// it for every request, so the steady state queues without allocating.
pub struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

struct SlotState {
    job: JobSpec,
    resp: String,
    done: bool,
    ok: bool,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot {
            state: Mutex::new(SlotState {
                job: JobSpec::new(),
                resp: String::new(),
                done: false,
                ok: false,
            }),
            cv: Condvar::new(),
        })
    }
}

/// Per-connection state: the reusable slot and the response buffer the
/// transport writes from.
pub struct ConnState {
    slot: Arc<Slot>,
    /// The response line (no trailing newline) for the last
    /// [`ServerCore::handle_line`] call.
    pub resp: String,
}

impl ConnState {
    pub fn new() -> Self {
        ConnState { slot: Slot::new(), resp: String::new() }
    }
}

impl Default for ConnState {
    fn default() -> Self {
        Self::new()
    }
}

/// What the transport should do after a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Write the response and keep reading.
    Respond,
    /// Write the response, then the server is shutting down.
    Shutdown,
}

/// The transport-independent server: parse → route → execute → respond.
/// Socket loops, in-process tests, and the load generator all drive
/// this same object.
pub struct ServerCore {
    cfg: ServeConfig,
    pub cache: PlanCache,
    pub metrics: ServerMetrics,
    queue: Mutex<VecDeque<Arc<Slot>>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
    started: Instant,
}

impl ServerCore {
    /// Build a server; with `batch_max > 1` this spawns the dispatcher
    /// thread (exactly one, for the server's lifetime).
    pub fn new(cfg: ServeConfig) -> Arc<Self> {
        let core = Arc::new(ServerCore {
            cfg,
            cache: PlanCache::new(cfg.cache_capacity),
            metrics: ServerMetrics::new(),
            queue: Mutex::new(VecDeque::with_capacity(cfg.max_queue)),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            dispatcher: Mutex::new(None),
            started: Instant::now(),
        });
        if cfg.batch_max > 1 {
            let c = Arc::clone(&core);
            let handle = std::thread::Builder::new()
                .name("serve-dispatch".into())
                .spawn(move || c.dispatcher_loop())
                .expect("spawn dispatcher");
            *core.dispatcher.lock().unwrap() = Some(handle);
        }
        core
    }

    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Flip the shutdown flag and wake everything that sleeps on it.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Join the dispatcher (after [`Self::begin_shutdown`]).
    pub fn join_dispatcher(&self) {
        if let Some(h) = self.dispatcher.lock().unwrap().take() {
            let _ = h.join();
        }
    }

    /// Handle one request line; the response (sans newline) lands in
    /// `conn.resp`. Never panics on any input — malformed frames become
    /// typed error responses.
    pub fn handle_line(&self, conn: &mut ConnState, line: &str) -> Action {
        let t0 = Instant::now();
        conn.resp.clear();
        let frame = match proto::parse_frame(line) {
            Ok(f) => f,
            Err(e) => {
                write_error(&mut conn.resp, None, &e);
                self.metrics.record("anon", false, elapsed_ns(t0));
                return Action::Respond;
            }
        };
        match frame.op {
            OpKind::Ping => {
                write_control(&mut conn.resp, frame.id, "ping");
                Action::Respond
            }
            OpKind::Stats => {
                conn.resp.push_str(&self.stats_json(frame.id).dump());
                Action::Respond
            }
            OpKind::Shutdown => {
                self.begin_shutdown();
                write_control(&mut conn.resp, frame.id, "shutdown");
                Action::Shutdown
            }
            OpKind::Run => {
                if let Err(e) = fill_job(conn, &frame, t0, self.cfg.backend) {
                    write_error(&mut conn.resp, frame.id, &e);
                    self.metrics.record(frame.tenant, false, elapsed_ns(t0));
                    return Action::Respond;
                }
                if self.cfg.batch_max > 1 {
                    self.enqueue_and_wait(conn);
                } else {
                    self.run_slot_inline(conn);
                }
                Action::Respond
            }
        }
    }

    /// Inline (unbatched) execution on the caller's thread.
    fn run_slot_inline(&self, conn: &mut ConnState) {
        let mut st = conn.slot.state.lock().unwrap();
        let st = &mut *st;
        let ok = self.run_job_guarded(&st.job, &mut st.resp);
        conn.resp.push_str(&st.resp);
        self.metrics.record(&st.job.tenant, ok, elapsed_ns(st.job.recv));
    }

    /// Queue the connection's slot and block until the dispatcher
    /// completes it. Admission control happens here: a full queue is an
    /// immediate `overloaded` response, not a longer line.
    fn enqueue_and_wait(&self, conn: &mut ConnState) {
        {
            let mut q = self.queue.lock().unwrap();
            if q.len() >= self.cfg.max_queue || self.shutdown_requested() {
                drop(q);
                self.metrics.rejected.add(1);
                let mut st = conn.slot.state.lock().unwrap();
                let st = &mut *st;
                let e = ProtoError {
                    kind: "overloaded",
                    offset: 0,
                    detail: if self.shutdown_requested() {
                        "server is shutting down".into()
                    } else {
                        format!("queue full ({} jobs waiting)", self.cfg.max_queue)
                    },
                };
                write_error(&mut st.resp, st.job.id, &e);
                conn.resp.push_str(&st.resp);
                self.metrics.record(&st.job.tenant, false, elapsed_ns(st.job.recv));
                return;
            }
            {
                let mut st = conn.slot.state.lock().unwrap();
                st.done = false;
                st.resp.clear();
            }
            q.push_back(Arc::clone(&conn.slot));
            self.queue_cv.notify_all();
        }
        let mut st = conn.slot.state.lock().unwrap();
        while !st.done {
            st = conn.slot.cv.wait(st).unwrap();
        }
        let st = &mut *st;
        conn.resp.push_str(&st.resp);
        self.metrics.record(&st.job.tenant, st.ok, elapsed_ns(st.job.recv));
    }

    /// The dispatcher: drain up to `batch_max` queued slots (holding a
    /// non-full batch open `batch_wait_us` for stragglers) and execute
    /// them as **one fused dispatch** across the worker pool. Runs until
    /// shutdown, then drains the queue so no client is left waiting.
    fn dispatcher_loop(self: Arc<Self>) {
        let mut batch: Vec<Arc<Slot>> = Vec::with_capacity(self.cfg.batch_max);
        loop {
            let mut q = self.queue.lock().unwrap();
            while q.is_empty() {
                if self.shutdown_requested() {
                    return;
                }
                q = self.queue_cv.wait(q).unwrap();
            }
            if q.len() < self.cfg.batch_max
                && self.cfg.batch_wait_us > 0
                && !self.shutdown_requested()
            {
                let deadline = Instant::now() + Duration::from_micros(self.cfg.batch_wait_us);
                while q.len() < self.cfg.batch_max && !self.shutdown_requested() {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (qq, timeout) = self.queue_cv.wait_timeout(q, deadline - now).unwrap();
                    q = qq;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            let n = q.len().min(self.cfg.batch_max);
            batch.clear();
            batch.extend(q.drain(..n));
            drop(q);
            self.metrics.batches.add(1);
            self.metrics.batched_jobs.add(n as u64);
            // Pre-plan every shape the batch needs on *this* thread,
            // before the fused dispatch: planning inside a pool lane is
            // forbidden, because the pool's join loop help-drains sibling
            // lanes — a planner's nested parallelism could execute a
            // sibling job that then waits on the planner's own
            // single-flight election, a wait that can never be notified
            // (the planner is frozen beneath it on the same stack). With
            // every entry published up front, lanes only ever hit.
            for slot in batch.iter() {
                let mut st = slot.state.lock().unwrap();
                let job = &mut st.job;
                let Ok(config) = crate::parse_config(&job.config) else {
                    continue; // execute_job will produce the typed error
                };
                if self.cache.contains(&job.kernel, &job.extents, job.ndims, config) {
                    continue;
                }
                let h = cache::shape_hash(&job.kernel, &job.extents, job.ndims, config);
                let Some(_permit) = self.cache.lead_or_wait(h) else { continue };
                self.metrics.cache_misses.add(1);
                let t0 = Instant::now();
                // panic firewall: planning runs client-controlled shapes
                // through the tuner, and an uncaught panic here would
                // kill the dispatcher thread and hang every batched
                // client. The catch also keeps `slot.state` unpoisoned
                // (the guard lives outside the closure). A panicked plan
                // publishes nothing; execute_job re-derives the failure
                // per job behind its own firewall and answers with a
                // typed `internal` error.
                if let Ok(Ok((entry, session))) =
                    catch_unwind(AssertUnwindSafe(|| self.plan_shape(job, config)))
                {
                    self.cache.checkin(&entry, session);
                }
                // a planning error is re-derived (and answered) per job;
                // the batch's first sighting owns the miss either way
                job.fresh_plan = true;
                job.plan_hint_ns = elapsed_ns(t0);
            }
            let slots = &batch[..];
            // one fused dispatch: every lane of the pool pulls jobs, and
            // each job's own nested parallelism help-drains the rest
            par::for_each_index(n, |i| {
                let slot = &slots[i];
                let mut st = slot.state.lock().unwrap();
                let st = &mut *st;
                st.ok = self.run_job_guarded(&st.job, &mut st.resp);
                st.done = true;
                slot.cv.notify_all();
            });
        }
    }

    /// Execute one job with a panic firewall: a panicking job becomes a
    /// typed `internal` error response instead of poisoning the
    /// dispatcher or the connection.
    fn run_job_guarded(&self, job: &JobSpec, resp: &mut String) -> bool {
        match catch_unwind(AssertUnwindSafe(|| self.execute_job(job, resp))) {
            Ok(ok) => ok,
            Err(_) => {
                let e = ProtoError {
                    kind: "internal",
                    offset: 0,
                    detail: "job panicked during execution".into(),
                };
                write_error(resp, job.id, &e);
                false
            }
        }
    }

    /// Plan a missed shape end to end: kernel resolution, dims check,
    /// tuning-DB lookup (with a bounded on-miss tune whose winner the
    /// cache entry memoizes — the bit-identity gate keeps any winner
    /// answer-neutral), session construction, cache insert. The caller
    /// must hold the shape's single-flight permit.
    fn plan_shape(
        &self,
        job: &JobSpec,
        config: ExecConfig,
    ) -> Result<(Arc<cache::CacheEntry>, ExecSession), ProtoError> {
        let Some(kernel) = crate::find_kernel(&job.kernel) else {
            return Err(ProtoError {
                kind: "kernel",
                offset: 0,
                detail: format!("unknown kernel \"{}\" (try `list`)", job.kernel),
            });
        };
        if kernel.dims() != job.ndims {
            return Err(ProtoError {
                kind: "frame",
                offset: 0,
                detail: format!(
                    "kernel {} is {}-D but size has {} dims",
                    kernel.name,
                    kernel.dims(),
                    job.ndims
                ),
            });
        }
        let extents = &job.extents[..job.ndims];
        let params = lorastencil::tuning::lookup(&kernel, extents, config).unwrap_or_else(|| {
            crate::tune::tune_on_miss(
                &kernel,
                config,
                extents,
                job.seed,
                job.iters,
                self.cfg.tune_budget,
            )
        });
        let session = ExecSession::with_params(&kernel, config, extents, params);
        let entry = self.cache.insert(kernel, job.extents, job.ndims, config, params);
        Ok((entry, session))
    }

    /// The job pipeline: config parse → plan-cache checkout (plan on
    /// miss) → fill → run → digest → response. Allocation-free on a
    /// warm cache hit.
    fn execute_job(&self, job: &JobSpec, resp: &mut String) -> bool {
        resp.clear();
        let config = match crate::parse_config(&job.config) {
            Ok(c) => c,
            Err(detail) => {
                write_error(resp, job.id, &ProtoError { kind: "config", offset: 0, detail });
                return false;
            }
        };
        let t_plan = Instant::now();
        let (entry, mut session, hit) = loop {
            match self.cache.checkout(&job.kernel, &job.extents, job.ndims, config) {
                Checkout::Hit(e, s) => {
                    // a shape the dispatcher pre-planned for this very job
                    // is a miss as far as the client is concerned — move
                    // the checkout's count so `stats` agrees with the
                    // per-job `"cache"` field
                    if job.fresh_plan {
                        self.cache.hits.fetch_sub(1, Ordering::Relaxed);
                        self.cache.misses.fetch_add(1, Ordering::Relaxed);
                        e.hits.fetch_sub(1, Ordering::Relaxed);
                    } else {
                        self.metrics.cache_hits.add(1);
                    }
                    break (e, s, !job.fresh_plan);
                }
                Checkout::Miss(h) => {
                    // single-flight: one thread plans a missed shape; a
                    // concurrent miss on the same key waits and retries
                    // the checkout against the published entry — the
                    // thundering herd neither tunes twice nor (since the
                    // tuner's winner is timing-dependent) races two
                    // different schedules into the first responses
                    let Some(_permit) = self.cache.lead_or_wait(h) else {
                        continue;
                    };
                    self.metrics.cache_misses.add(1);
                    match self.plan_shape(job, config) {
                        Ok((entry, session)) => break (entry, session, false),
                        Err(e) => {
                            write_error(resp, job.id, &e);
                            return false;
                        }
                    }
                }
            }
        };
        let points = session.points();
        if job.values == ValuesMode::Full && points > MAX_FULL_VALUES {
            let e = ProtoError {
                kind: "limit",
                offset: 0,
                detail: format!(
                    "\"values\":\"full\" is capped at {MAX_FULL_VALUES} points, job has {points}"
                ),
            };
            write_error(resp, job.id, &e);
            self.cache.checkin(&entry, session);
            return false;
        }
        let plan_ns = elapsed_ns(t_plan) + job.plan_hint_ns;

        let t_fill = Instant::now();
        let seed = job.seed;
        session.fill_with(|idx| crate::grid_value(seed, idx));
        let fill_ns = elapsed_ns(t_fill);

        let t_exec = Instant::now();
        let counters = session.run(job.iters);
        let exec_ns = elapsed_ns(t_exec);

        // digest: CRC-32 over the output bit patterns plus sum/min/max,
        // accumulated in plane-major order so it is thread-count- and
        // batching-independent (the determinism test's currency)
        let t_digest = Instant::now();
        let mut crc = Crc32::new();
        let (mut sum, mut lo, mut hi) = (0.0f64, f64::INFINITY, f64::NEG_INFINITY);
        if job.values != ValuesMode::None {
            for plane in session.planes() {
                for &v in plane.as_slice() {
                    crc.update(&v.to_bits().to_le_bytes());
                    sum += v;
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        let digest_ns = elapsed_ns(t_digest);

        // response
        resp.push('{');
        write_id(resp, job.id);
        resp.push_str("\"ok\":true,\"tenant\":\"");
        escape_into(resp, &job.tenant);
        let _ = write!(resp, "\",\"kernel\":\"{}\",\"size\":[", entry.kernel.name);
        for (i, e) in job.extents[..job.ndims].iter().enumerate() {
            if i > 0 {
                resp.push(',');
            }
            let _ = write!(resp, "{e}");
        }
        let _ = write!(
            resp,
            "],\"iters\":{},\"points\":{},\"cache\":\"{}\"",
            job.iters,
            points,
            if hit { "hit" } else { "miss" }
        );
        if job.values != ValuesMode::None {
            let _ = write!(
                resp,
                ",\"digest\":\"crc32:{:08x}\",\"sum\":{sum},\"min\":{lo},\"max\":{hi}",
                crc.finish()
            );
        }
        if job.values == ValuesMode::Full {
            resp.push_str(",\"values\":[");
            let mut first = true;
            for plane in session.planes() {
                for &v in plane.as_slice() {
                    if !first {
                        resp.push(',');
                    }
                    first = false;
                    let _ = write!(resp, "{v}");
                }
            }
            resp.push(']');
        }
        resp.push_str(",\"counters\":{");
        for (i, (name, val)) in counters.fields().iter().enumerate() {
            if i > 0 {
                resp.push(',');
            }
            let _ = write!(resp, "\"{name}\":{val}");
        }
        let _ = write!(resp, ",\"global_bytes\":{}}}", counters.global_bytes());
        let _ = write!(
            resp,
            ",\"profile\":{{\"plan_ns\":{plan_ns},\"fill_ns\":{fill_ns},\"exec_ns\":{exec_ns},\
             \"digest_ns\":{digest_ns},\"total_ns\":{}}}}}",
            elapsed_ns(job.recv)
        );
        self.cache.checkin(&entry, session);
        true
    }

    /// The `stats` op body (also the shutdown summary's data source).
    pub fn stats_json(&self, id: Option<u64>) -> Json {
        let entries: Vec<Json> = self
            .cache
            .entries()
            .iter()
            .map(|e| {
                Json::obj([
                    ("kernel", e.kernel.name.to_json()),
                    ("size", e.extents().to_json()),
                    ("params", e.params.describe().to_json()),
                    ("hits", e.hits.load(Ordering::Relaxed).to_json()),
                    ("pooled", e.pooled().to_json()),
                ])
            })
            .collect();
        let mut fields: Vec<(String, Json)> = Vec::new();
        if let Some(id) = id {
            fields.push(("id".into(), id.to_json()));
        }
        fields.extend([
            ("ok".into(), true.to_json()),
            ("op".into(), "stats".to_json()),
            ("uptime_ns".into(), elapsed_ns(self.started).to_json()),
            ("threads".into(), (par::num_threads() as u64).to_json()),
            (
                "cache".into(),
                Json::obj([
                    ("entries", (self.cache.len() as u64).to_json()),
                    ("capacity", (self.cfg.cache_capacity as u64).to_json()),
                    ("hits", self.cache.hits.load(Ordering::Relaxed).to_json()),
                    ("misses", self.cache.misses.load(Ordering::Relaxed).to_json()),
                    ("evictions", self.cache.evictions.load(Ordering::Relaxed).to_json()),
                    ("coalesced", self.cache.coalesced.load(Ordering::Relaxed).to_json()),
                    ("takeovers", self.cache.takeovers.load(Ordering::Relaxed).to_json()),
                    ("plans", Json::Arr(entries)),
                ]),
            ),
            (
                "queue".into(),
                Json::obj([
                    ("depth", (self.queue.lock().unwrap().len() as u64).to_json()),
                    ("max", (self.cfg.max_queue as u64).to_json()),
                    ("batch_max", (self.cfg.batch_max as u64).to_json()),
                    ("rejected", self.metrics.rejected.get().to_json()),
                    ("batches", self.metrics.batches.get().to_json()),
                    ("batched_jobs", self.metrics.batched_jobs.get().to_json()),
                ]),
            ),
            (
                "jobs".into(),
                Json::obj([
                    ("ok", self.metrics.jobs_ok.get().to_json()),
                    ("err", self.metrics.jobs_err.get().to_json()),
                    ("p50_ns", self.metrics.latency.quantile_ns(0.5).to_json()),
                    ("p99_ns", self.metrics.latency.quantile_ns(0.99).to_json()),
                    ("max_ns", self.metrics.latency.max_ns().to_json()),
                ]),
            ),
            ("tenants".into(), self.metrics.tenants_json()),
        ]);
        Json::Obj(fields)
    }
}

fn elapsed_ns(t: Instant) -> u64 {
    t.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Copy one parsed run frame into the connection's slot, resolving the
/// scenario if named. Reuses the slot's string capacity.
fn fill_job(
    conn: &mut ConnState,
    frame: &Frame<'_>,
    t0: Instant,
    default_backend: &str,
) -> Result<(), ProtoError> {
    let mut st = conn.slot.state.lock().unwrap();
    let job = &mut st.job;
    job.id = frame.id;
    set_str(&mut job.tenant, frame.tenant);
    job.seed = frame.seed;
    job.values = frame.values;
    job.recv = t0;
    job.fresh_plan = false;
    job.plan_hint_ns = 0;
    if frame.scenario.is_empty() {
        set_str(&mut job.kernel, frame.kernel);
        if frame.has("config") || default_backend.is_empty() {
            set_str(&mut job.config, frame.config);
        } else {
            set_str(&mut job.config, default_backend);
        }
        job.extents = frame.size;
        job.ndims = frame.ndims;
        job.iters = frame.iters.unwrap_or(1);
    } else {
        let Some(s) = SCENARIOS.iter().find(|s| s.name == frame.scenario) else {
            let names: Vec<&str> = SCENARIOS.iter().map(|s| s.name).collect();
            return Err(ProtoError {
                kind: "frame",
                offset: 0,
                detail: format!(
                    "unknown scenario \"{}\" (scenarios: {})",
                    frame.scenario,
                    names.join(", ")
                ),
            });
        };
        for preset in ["size", "config"] {
            if frame.has(preset) {
                return Err(ProtoError {
                    kind: "frame",
                    offset: 0,
                    detail: format!("\"{preset}\" conflicts with the scenario's preset"),
                });
            }
        }
        set_str(&mut job.kernel, s.kernel);
        set_str(&mut job.config, s.config);
        job.extents = s.size;
        job.ndims = s.ndims;
        job.iters = frame.iters.unwrap_or(s.iters);
    }
    Ok(())
}

/// JSON string-escape `s` into `out` (quotes, backslashes, control
/// bytes). Tenant names are attacker-controlled; everything echoed into
/// a response goes through here.
fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_id(resp: &mut String, id: Option<u64>) {
    match id {
        Some(id) => {
            let _ = write!(resp, "\"id\":{id},");
        }
        None => resp.push_str("\"id\":null,"),
    }
}

/// The typed error response every rejected frame gets: kind + byte
/// offset + escaped detail.
fn write_error(resp: &mut String, id: Option<u64>, e: &ProtoError) {
    resp.clear();
    resp.push('{');
    write_id(resp, id);
    let _ =
        write!(resp, "\"ok\":false,\"error\":{{\"kind\":\"{}\",\"offset\":{},", e.kind, e.offset);
    resp.push_str("\"detail\":\"");
    escape_into(resp, &e.detail);
    resp.push_str("\"}}");
}

fn write_control(resp: &mut String, id: Option<u64>, op: &str) {
    resp.push('{');
    write_id(resp, id);
    let _ = write!(resp, "\"ok\":true,\"op\":\"{op}\"}}");
}

/// Where a daemon listens.
pub struct ServeOptions {
    /// Unix socket path ("" = no unix listener).
    pub socket: String,
    /// TCP address like `127.0.0.1:7878` ("" = no TCP listener).
    pub tcp: String,
    pub cfg: ServeConfig,
}

/// RAII connection-count guard.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The blocking daemon entry point: bind, accept until a shutdown frame
/// arrives, return a summary. Connection threads are detached — they
/// die with the process after the accept loop ends.
pub fn serve(opts: ServeOptions) -> Result<String, String> {
    use std::net::TcpListener;
    use std::os::unix::net::UnixListener;

    if opts.socket.is_empty() && opts.tcp.is_empty() {
        return Err("serve needs --socket <path> and/or --tcp <addr>".into());
    }
    let core = ServerCore::new(opts.cfg);
    let unix = if opts.socket.is_empty() {
        None
    } else {
        let _ = std::fs::remove_file(&opts.socket);
        let l = UnixListener::bind(&opts.socket)
            .map_err(|e| format!("bind unix {}: {e}", opts.socket))?;
        l.set_nonblocking(true).map_err(|e| e.to_string())?;
        Some(l)
    };
    let tcp = if opts.tcp.is_empty() {
        None
    } else {
        let l = TcpListener::bind(&opts.tcp).map_err(|e| format!("bind tcp {}: {e}", opts.tcp))?;
        l.set_nonblocking(true).map_err(|e| e.to_string())?;
        Some(l)
    };
    {
        use std::io::Write as _;
        let mut out = std::io::stdout().lock();
        if let Some(_l) = &unix {
            let _ = writeln!(out, "serving on unix:{}", opts.socket);
        }
        if let Some(l) = &tcp {
            let addr = l.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| opts.tcp.clone());
            let _ = writeln!(out, "serving on tcp:{addr}");
        }
        let _ = out.flush();
    }
    let conns = Arc::new(AtomicUsize::new(0));
    while !core.shutdown_requested() {
        let mut accepted = false;
        if let Some(l) = &unix {
            match l.accept() {
                Ok((stream, _)) => {
                    accepted = true;
                    let rd = stream.try_clone().map_err(|e| e.to_string())?;
                    spawn_conn(&core, &conns, rd, stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(format!("unix accept: {e}")),
            }
        }
        if let Some(l) = &tcp {
            match l.accept() {
                Ok((stream, _)) => {
                    accepted = true;
                    let rd = stream.try_clone().map_err(|e| e.to_string())?;
                    spawn_conn(&core, &conns, rd, stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(format!("tcp accept: {e}")),
            }
        }
        if !accepted {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    core.join_dispatcher();
    if !opts.socket.is_empty() {
        let _ = std::fs::remove_file(&opts.socket);
    }
    // brief grace so in-flight responses flush before the process exits
    std::thread::sleep(Duration::from_millis(50));
    Ok(format!(
        "serve: {} ok, {} errors, {} cache hits / {} misses, p99 {} ns\n",
        core.metrics.jobs_ok.get(),
        core.metrics.jobs_err.get(),
        core.cache.hits.load(Ordering::Relaxed),
        core.cache.misses.load(Ordering::Relaxed),
        core.metrics.latency.quantile_ns(0.99),
    ))
}

fn spawn_conn<R, W>(core: &Arc<ServerCore>, conns: &Arc<AtomicUsize>, read: R, mut write: W)
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    let n = conns.fetch_add(1, Ordering::SeqCst);
    let guard = ConnGuard(Arc::clone(conns));
    if n >= core.config().max_conns {
        core.metrics.rejected.add(1);
        let mut resp = String::new();
        let e = ProtoError {
            kind: "overloaded",
            offset: 0,
            detail: format!("connection limit ({}) reached", core.config().max_conns),
        };
        write_error(&mut resp, None, &e);
        resp.push('\n');
        let _ = write.write_all(resp.as_bytes());
        drop(guard);
        return;
    }
    let core = Arc::clone(core);
    let _ = std::thread::Builder::new().name("serve-conn".into()).spawn(move || {
        let _guard = guard;
        handle_conn(&core, read, write);
    });
}

/// One connection's read-respond loop. Stream-level protocol failures
/// (oversized line, bad UTF-8, IO error) get one typed response, then
/// the connection closes — after an unframed byte flood the stream
/// state is unknowable.
fn handle_conn<R: Read, W: Write>(core: &Arc<ServerCore>, read: R, mut write: W) {
    let mut reader = NdjsonReader::new(BufReader::new(read));
    let mut conn = ConnState::new();
    loop {
        match reader.next_line() {
            Ok(Some(line)) => {
                let action = core.handle_line(&mut conn, line);
                conn.resp.push('\n');
                if write.write_all(conn.resp.as_bytes()).is_err() {
                    return;
                }
                let _ = write.flush();
                if action == Action::Shutdown {
                    return;
                }
            }
            Ok(None) => return,
            Err(e) => {
                let pe = ProtoError {
                    kind: "parse",
                    offset: usize::try_from(e.offset).unwrap_or(0),
                    detail: e.message,
                };
                let mut resp = String::new();
                write_error(&mut resp, None, &pe);
                resp.push('\n');
                let _ = write.write_all(resp.as_bytes());
                let _ = write.flush();
                return;
            }
        }
    }
}

/// The `submit` client: send frames (one `--frame`, or stdin lines) to
/// a running daemon, print one response line per frame.
pub fn submit(socket: &str, tcp: &str, frame: &str) -> Result<String, String> {
    use std::io::BufRead;
    let (read, mut write): (Box<dyn Read>, Box<dyn Write>) = if !socket.is_empty() {
        let s = std::os::unix::net::UnixStream::connect(socket)
            .map_err(|e| format!("connect unix {socket}: {e}"))?;
        let r = s.try_clone().map_err(|e| e.to_string())?;
        (Box::new(r), Box::new(s))
    } else if !tcp.is_empty() {
        let s = std::net::TcpStream::connect(tcp).map_err(|e| format!("connect tcp {tcp}: {e}"))?;
        let r = s.try_clone().map_err(|e| e.to_string())?;
        (Box::new(r), Box::new(s))
    } else {
        return Err("submit needs --socket <path> or --tcp <addr>".into());
    };
    let mut reader = NdjsonReader::new(BufReader::new(read));
    let mut out = String::new();
    let mut send = |line: &str, out: &mut String| -> Result<bool, String> {
        write
            .write_all(line.as_bytes())
            .and_then(|_| write.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        write.flush().map_err(|e| format!("send: {e}"))?;
        match reader.next_line() {
            Ok(Some(resp)) => {
                out.push_str(resp);
                out.push('\n');
                Ok(true)
            }
            Ok(None) => Ok(false),
            Err(e) => Err(format!("recv: {e}")),
        }
    };
    if !frame.is_empty() {
        send(frame, &mut out)?;
    } else {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| format!("stdin: {e}"))?;
            if line.trim().is_empty() {
                continue;
            }
            if !send(&line, &mut out)? {
                break;
            }
        }
    }
    Ok(out)
}

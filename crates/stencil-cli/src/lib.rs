//! # stencil-cli — the `lorastencil` command-line front end
//!
//! The downstream-user entry point: run any kernel (Table II or the
//! extended library) with any method on the simulated A100, verify
//! against the reference, inspect counters and modeled performance, or
//! emit the CUDA/WMMA listing a plan corresponds to.
//!
//! ```text
//! lorastencil list
//! lorastencil run --kernel Box-2D49P --size 256x256 --iters 4 --verify
//! lorastencil run --kernel Heat-3D --method ConvStencil --size 8x64x64
//! lorastencil run --kernel Box-2D9P --config no-bvs       # ablation
//! lorastencil emit-cuda --kernel Box-2D49P
//! lorastencil analyze --radius 3
//! ```

pub mod args;
pub mod serve;
pub mod tune;

pub use tune::{install_tuning_db, tune_report};

use lorastencil::checkpoint::CkptPolicy;
use lorastencil::{codegen, ExecConfig, LoRaStencil, Plan};
use stencil_core::checkpoint::CheckpointStore;
use stencil_core::{
    kernels, kernels_ext, Grid1D, Grid2D, Grid3D, GridData, Problem, StencilExecutor, StencilKernel,
};
use tcu_sim::{BlockResources, CostModel, PerfCounters};

/// Every kernel the CLI can name (benchmarks + extended library).
pub fn all_kernels() -> Vec<StencilKernel> {
    let mut v = kernels::all_kernels();
    v.extend(kernels_ext::all_extended());
    v
}

/// Look a kernel up by name — case-insensitive, and tolerant of missing
/// `-`/`_` separators (`box2d9p` finds `Box-2D9P`).
pub fn find_kernel(name: &str) -> Option<StencilKernel> {
    let ks = all_kernels();
    if let Some(k) = ks.iter().find(|k| k.name.eq_ignore_ascii_case(name)) {
        return Some(k.clone());
    }
    let norm = |s: &str| -> String {
        s.chars().filter(|c| *c != '-' && *c != '_').map(|c| c.to_ascii_lowercase()).collect()
    };
    let want = norm(name);
    ks.into_iter().find(|k| norm(&k.name) == want)
}

/// Resolve a kernel from `--spec <file>` (the kernel-spec DSL,
/// [`stencil_core::spec`]) or `--kernel <name>`; `--spec` wins.
pub fn resolve_kernel(spec_path: &str, name: &str) -> Result<StencilKernel, String> {
    if !spec_path.is_empty() {
        let text = std::fs::read_to_string(spec_path)
            .map_err(|e| format!("cannot read {spec_path}: {e}"))?;
        return stencil_core::spec::parse_kernel(&text).map_err(|e| format!("{spec_path}: {e}"));
    }
    find_kernel(name).ok_or_else(|| format!("unknown kernel {name:?} (try `list`)"))
}

/// Build an executor by method name.
pub fn find_method(
    name: &str,
    config: ExecConfig,
) -> Option<Box<dyn StencilExecutor + Send + Sync>> {
    if name.eq_ignore_ascii_case("lorastencil") {
        return Some(Box::new(LoRaStencil::with_config(config)));
    }
    baselines::all_baselines().into_iter().find(|b| b.name().eq_ignore_ascii_case(name))
}

/// Parse a `--config` spec: comma-separated tokens out of the backend
/// selectors `sparse`, `simd`, `no-tcu` and the toggles `no-bvs`,
/// `no-async`, `no-fusion` (LoRAStencil only). Backend selectors are
/// mutually exclusive; the last one wins.
pub fn parse_config(spec: &str) -> Result<ExecConfig, String> {
    use lorastencil::plan::DeviceBackend;
    let mut cfg = ExecConfig::full();
    for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        match tok {
            "full" => cfg = ExecConfig::full(),
            "tcu" => cfg.backend = DeviceBackend::TcuF64,
            "sparse" => cfg.backend = DeviceBackend::SparseTcu,
            "simd" => cfg.backend = DeviceBackend::SimdCore,
            "no-tcu" => cfg.backend = DeviceBackend::CudaCore,
            "no-bvs" => cfg.use_bvs = false,
            "no-async" => cfg.use_async_copy = false,
            "no-fusion" => cfg.allow_fusion = false,
            other => return Err(format!("unknown config toggle {other}")),
        }
    }
    Ok(cfg)
}

/// Canonicalize a `--backend` token to its `--config` spelling. Empty
/// (flag not given) stays empty — "no override".
pub fn backend_token(token: &str) -> Result<&'static str, String> {
    match token.trim() {
        "" => Ok(""),
        "tcu" => Ok("tcu"),
        "sparse" => Ok("sparse"),
        "simd" => Ok("simd"),
        "cuda" | "no-tcu" => Ok("no-tcu"),
        other => Err(format!("unknown backend {other:?} (expected tcu, sparse, simd or cuda)")),
    }
}

/// Apply a `--backend` selector on top of a parsed `--config`. The
/// token names just the device backend; feature toggles stay with
/// `--config`. Empty leaves the config untouched.
pub fn apply_backend(mut cfg: ExecConfig, token: &str) -> Result<ExecConfig, String> {
    match backend_token(token)? {
        "" => {}
        t => cfg.backend = parse_config(t)?.backend,
    }
    Ok(cfg)
}

/// Parse `--checkpoint-every`: a positive temporal step count. Zero and
/// negative are hard errors with a suggestion (silently accepting 0
/// would mean "no checkpoints" on a flag whose whole point is having
/// them).
pub fn parse_checkpoint_every(spec: &str) -> Result<u64, String> {
    match spec.trim().parse::<i64>() {
        Ok(n) if n >= 1 => Ok(n as u64),
        Ok(n) => Err(format!(
            "--checkpoint-every must be a positive step count, got {n} \
             (try --checkpoint-every 1 to snapshot after every step)"
        )),
        Err(e) => Err(format!("bad --checkpoint-every {spec:?}: {e}")),
    }
}

/// Parse `--checkpoint-keep`: the retention-ring size, at least 1.
pub fn parse_checkpoint_keep(spec: &str) -> Result<usize, String> {
    match spec.trim().parse::<i64>() {
        Ok(n) if n >= 1 => Ok(n as usize),
        Ok(n) => Err(format!(
            "--checkpoint-keep must retain at least one snapshot, got {n} \
             (try --checkpoint-keep 3)"
        )),
        Err(e) => Err(format!("bad --checkpoint-keep {spec:?}: {e}")),
    }
}

/// The counters + modeled-performance report lines shared by `run`,
/// checkpointed `run` and `resume`.
fn counters_and_model(c: &PerfCounters, block: &BlockResources) -> String {
    let mut out = format!(
        "counters: {} MMAs, {} CUDA flops, {} shuffles, {}+{} shared req, {} B HBM, {} B L2\n",
        c.mma_ops,
        c.cuda_flops,
        c.shuffle_ops,
        c.shared_load_requests,
        c.shared_store_requests,
        c.global_bytes(),
        c.l2_bytes,
    );
    let model = CostModel::a100();
    let est = model.estimate(c, block);
    out.push_str(&format!(
        "modeled A100: {:.3} ms, {:.1} GStencil/s, occupancy {:.0}%\n",
        est.total * 1e3,
        est.gstencil_per_sec(c.points_updated),
        est.occupancy * 100.0
    ));
    out
}

/// The checkpointed `run` path (`--checkpoint-dir`): LoRAStencil with
/// periodic crash-consistent snapshots. Checkpointing is wired through
/// the LoRAStencil stepper, so other methods are a hard error rather
/// than silently running without snapshots.
#[allow(clippy::too_many_arguments)]
pub fn run_checkpointed_report(
    kernel: &StencilKernel,
    config: ExecConfig,
    method_name: &str,
    dims: &[usize],
    iters: usize,
    seed: u64,
    verify: bool,
    dir: &str,
    every: u64,
    keep: usize,
) -> Result<String, String> {
    if !method_name.eq_ignore_ascii_case("lorastencil") {
        return Err(format!(
            "--checkpoint-dir requires --method LoRAStencil \
             (checkpoint/resume is wired through the LoRAStencil stepper), got {method_name:?}"
        ));
    }
    let dims = &broadcast_dims(dims, kernel.dims())[..];
    if dims.len() != kernel.dims() {
        return Err(format!(
            "kernel {} is {}-D but --size has {} dims",
            kernel.name,
            kernel.dims(),
            dims.len()
        ));
    }
    let input = make_grid(dims, seed);
    let store = CheckpointStore::new(dir, keep).map_err(|e| format!("{dir}: {e}"))?;
    let policy = CkptPolicy { store: &store, every, seed, method: "LoRAStencil" };
    let out = lorastencil::checkpoint::run(kernel, config, &input, iters as u64, &policy)
        .map_err(|e| e.to_string())?;
    let mut report = format!(
        "LoRAStencil on {} {:?} for {} iterations (checkpoint every {} steps, keep {})\n\n",
        kernel.name, dims, iters, every, keep
    );
    if verify {
        let want = stencil_core::reference::run(&input, kernel, iters);
        let err = out.output.max_abs_diff(&want);
        report.push_str(&format!("verification vs naive reference: max |Δ| = {err:.3e}\n"));
        if err > 1e-9 {
            return Err(format!("verification FAILED: {err:.3e}"));
        }
    }
    report.push_str(&counters_and_model(&out.counters, &out.block));
    report.push_str(&format!("{} snapshots written to {dir}\n", out.snapshots_written));
    Ok(report)
}

/// The `resume` subcommand: recover the newest valid snapshot from
/// `--checkpoint-dir`, reject it if its plan fingerprint disagrees with
/// what the recorded kernel/config/extents plan to, and run the
/// remaining steps — continuing to snapshot at the recorded interval.
/// Needs no other flags: the snapshot records the kernel, config, seed
/// and step budget. `--verify` replays the reference from the recorded
/// seeded input over **all** `steps_total` steps, so it checks the
/// pre-crash prefix too.
pub fn resume_report(dir: &str, keep: usize, verify: bool) -> Result<String, String> {
    let store = CheckpointStore::new(dir, keep).map_err(|e| format!("{dir}: {e}"))?;
    let (snap, rejects) = store.load_latest_valid().map_err(|e| e.to_string())?;
    let mut report = String::new();
    for (path, err) in &rejects {
        report.push_str(&format!("skipping invalid snapshot {}: {err}\n", path.display()));
    }
    let kernel = find_kernel(&snap.kernel)
        .ok_or_else(|| format!("snapshot names unknown kernel {:?}", snap.kernel))?;
    let config = parse_config(&snap.config)
        .map_err(|e| format!("snapshot carries unparsable config {:?}: {e}", snap.config))?;
    report.push_str(&format!(
        "resuming {} on {} {:?} from step {} of {}\n\n",
        snap.method, snap.kernel, snap.extents, snap.step, snap.steps_total
    ));
    let policy =
        CkptPolicy { store: &store, every: snap.every, seed: snap.seed, method: "LoRAStencil" };
    let out = lorastencil::checkpoint::resume(&kernel, config, &snap, &policy)
        .map_err(|e| e.to_string())?;
    if verify {
        let input = make_grid(&snap.extents, snap.seed);
        let want = stencil_core::reference::run(&input, &kernel, snap.steps_total as usize);
        let err = out.output.max_abs_diff(&want);
        report.push_str(&format!(
            "verification vs naive reference over all {} steps: max |Δ| = {err:.3e}\n",
            snap.steps_total
        ));
        if err > 1e-9 {
            return Err(format!("verification FAILED: {err:.3e}"));
        }
    }
    report.push_str(&counters_and_model(&out.counters, &out.block));
    report.push_str(&format!("{} snapshots written to {dir}\n", out.snapshots_written));
    Ok(report)
}

/// Broadcast a single-dimension `--size N` to the kernel's
/// dimensionality (`--size 768` on a 2-D kernel means `768x768`).
pub fn broadcast_dims(dims: &[usize], kernel_dims: usize) -> Vec<usize> {
    if dims.len() == 1 && kernel_dims > 1 {
        vec![dims[0]; kernel_dims]
    } else {
        dims.to_vec()
    }
}

/// The deterministic per-point value of every generated grid: `idx` is
/// the plane-major linear index. One definition shared by `make_grid`
/// (the offline `run`/`profile`/`tune` paths) and the serve daemon's
/// session fill, so a service job and `run --seed N` agree bit for bit.
pub fn grid_value(seed: u64, idx: u64) -> f64 {
    let x = idx.wrapping_add(seed).wrapping_mul(0x9E3779B97F4A7C15);
    ((x >> 17) % 4096) as f64 / 256.0 - 8.0
}

/// Build a deterministic input grid of the given dimensions.
pub fn make_grid(dims: &[usize], seed: u64) -> GridData {
    let f = move |idx: u64| grid_value(seed, idx);
    match dims {
        [n] => GridData::D1(Grid1D::from_fn(*n, |i| f(i as u64))),
        [r, c] => GridData::D2(Grid2D::from_fn(*r, *c, |i, j| f((i * c + j) as u64))),
        [z, y, x] => {
            GridData::D3(Grid3D::from_fn(*z, *y, *x, |i, j, k| f(((i * y + j) * x + k) as u64)))
        }
        _ => unreachable!("parse_size enforces 1..=3 dims"),
    }
}

/// The `list` subcommand body.
pub fn list_text() -> String {
    let mut out = String::from("kernels:\n");
    for k in all_kernels() {
        out.push_str(&format!(
            "  {:<16} {}D {:?} radius {} ({} points)\n",
            k.name,
            k.dims(),
            k.shape,
            k.radius,
            k.points()
        ));
    }
    out.push_str("\nmethods:\n  LoRAStencil (default)\n");
    for b in baselines::all_baselines() {
        out.push_str(&format!("  {}\n", b.name()));
    }
    out.push_str("\nconfig toggles (LoRAStencil): no-tcu, no-bvs, no-async, no-fusion\n");
    out
}

/// The `run` subcommand: execute, optionally verify, report counters and
/// modeled performance. Returns the printable report. `load_path` reads
/// the input field from a checkpoint ([`stencil_core::io`]) instead of
/// generating one; `save_path` checkpoints the output. A non-empty
/// `trace_out` records host-side spans during execution and writes them
/// as a chrome-trace JSON file.
#[allow(clippy::too_many_arguments)]
pub fn run_report(
    kernel: &StencilKernel,
    method: &dyn StencilExecutor,
    dims: &[usize],
    iters: usize,
    seed: u64,
    verify: bool,
    load_path: &str,
    save_path: &str,
    trace_out: &str,
) -> Result<String, String> {
    let dims = &broadcast_dims(dims, kernel.dims())[..];
    let input = if load_path.is_empty() {
        if dims.len() != kernel.dims() {
            return Err(format!(
                "kernel {} is {}-D but --size has {} dims",
                kernel.name,
                kernel.dims(),
                dims.len()
            ));
        }
        make_grid(dims, seed)
    } else {
        let g = stencil_core::io::load(load_path).map_err(|e| format!("{load_path}: {e}"))?;
        if g.dims() != kernel.dims() {
            return Err(format!(
                "checkpoint {load_path} is {}-D but kernel {} is {}-D",
                g.dims(),
                kernel.name,
                kernel.dims()
            ));
        }
        g
    };
    let problem = Problem::new(kernel.clone(), input, iters);
    let tracing = !trace_out.is_empty();
    if tracing {
        foundation::obs::reset();
        foundation::obs::enable();
    }
    let result = method.execute(&problem).map_err(|e| e.to_string());
    let trace = if tracing {
        foundation::obs::disable();
        Some(foundation::obs::drain())
    } else {
        None
    };
    let outcome = result?;
    let mut out = String::new();
    out.push_str(&format!(
        "{} on {} {:?} for {} iterations\n\n",
        method.name(),
        kernel.name,
        dims,
        iters
    ));
    if verify {
        let want = stencil_core::reference::run(&problem.input, &problem.kernel, iters);
        let err = outcome.output.max_abs_diff(&want);
        out.push_str(&format!("verification vs naive reference: max |Δ| = {err:.3e}\n"));
        if err > 1e-9 {
            return Err(format!("verification FAILED: {err:.3e}"));
        }
    }
    out.push_str(&counters_and_model(&outcome.counters, &outcome.block));
    if !save_path.is_empty() {
        stencil_core::io::save(&outcome.output, save_path)
            .map_err(|e| format!("{save_path}: {e}"))?;
        out.push_str(&format!("output checkpointed to {save_path}\n"));
    }
    if let Some(trace) = trace {
        std::fs::write(trace_out, trace.to_chrome_json().dump() + "\n")
            .map_err(|e| format!("{trace_out}: {e}"))?;
        out.push_str(&format!("{} host span events written to {trace_out}\n", trace.len()));
    }
    Ok(out)
}

/// The `profile` subcommand: run a kernel with host-side span tracing
/// on, print the per-phase breakdown (the host-side analogue of the
/// paper's Fig. 9 stage attribution), and write a chrome-trace JSON file
/// loadable in `chrome://tracing` / Perfetto.
pub fn profile_report(
    kernel: &StencilKernel,
    method: &dyn StencilExecutor,
    dims: &[usize],
    iters: usize,
    seed: u64,
    trace_out: &str,
) -> Result<String, String> {
    let dims = broadcast_dims(dims, kernel.dims());
    if dims.len() != kernel.dims() {
        return Err(format!(
            "kernel {} is {}-D but --size has {} dims",
            kernel.name,
            kernel.dims(),
            dims.len()
        ));
    }
    let problem = Problem::new(kernel.clone(), make_grid(&dims, seed), iters);
    foundation::obs::reset();
    foundation::obs::enable();
    let start = std::time::Instant::now();
    let result = method.execute(&problem).map_err(|e| e.to_string());
    let wall_ns = start.elapsed().as_nanos() as u64;
    foundation::obs::disable();
    let trace = foundation::obs::drain();
    let outcome = result?;

    let mut out = format!(
        "profiling {} on {} {:?} for {} iterations\n\n",
        method.name(),
        kernel.name,
        dims,
        iters
    );
    let breakdown = foundation::obs::phase_breakdown();
    out.push_str(&foundation::obs::render_breakdown(&breakdown, wall_ns));
    out.push_str(&format!(
        "\nwall time {:.3} ms, {} span events ({} dropped), {} points updated\n",
        wall_ns as f64 / 1e6,
        trace.len(),
        trace.dropped,
        outcome.counters.points_updated,
    ));
    std::fs::write(trace_out, trace.to_chrome_json().dump() + "\n")
        .map_err(|e| format!("{trace_out}: {e}"))?;
    out.push_str(&format!("chrome trace written to {trace_out} (load in chrome://tracing)\n"));
    Ok(out)
}

/// The `validate-trace` subcommand: parse a chrome-trace file written by
/// `profile`/`run --trace-out` and check every event carries the fields
/// Perfetto's JSON importer requires.
pub fn validate_trace(path: &str) -> Result<String, String> {
    use foundation::json::Json;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let events = doc.as_arr().ok_or_else(|| format!("{path}: top level is not an array"))?;
    for (i, e) in events.iter().enumerate() {
        let field =
            |key: &str| e.get(key).ok_or_else(|| format!("{path}: event {i} is missing {key:?}"));
        let name = field("name")?;
        if name.as_str().is_none() {
            return Err(format!("{path}: event {i} has a non-string name"));
        }
        if field("ph")?.as_str() != Some("X") {
            return Err(format!("{path}: event {i} is not a complete event (ph != \"X\")"));
        }
        for key in ["ts", "dur", "pid", "tid"] {
            if field(key)?.as_f64().is_none() {
                return Err(format!("{path}: event {i} has a non-numeric {key:?}"));
            }
        }
    }
    Ok(format!("{path}: valid chrome trace, {} events\n", events.len()))
}

/// The `trace` subcommand body: the instruction timeline of one RDG tile
/// under the kernel's plan (what Nsight's instruction view would show for
/// one warp).
pub fn trace_text(kernel: &StencilKernel, config: ExecConfig) -> Result<String, String> {
    if kernel.dims() != 2 {
        return Err("trace currently targets 2-D plans".into());
    }
    use lorastencil::rdg::{apply_pointwise, rdg_apply_term, XFragments};
    let plan = Plan::new(kernel, config);
    let mut ctx = tcu_sim::SimContext::new();
    ctx.enable_trace();
    let mut tile = tcu_sim::SharedTile::new(plan.geo.s, plan.geo.s);
    for r in 0..plan.geo.s {
        for c in 0..plan.geo.s {
            tile.poke(r, c, ((r * 31 + c * 7) % 13) as f64 * 0.3);
        }
    }
    let x = XFragments::load(&mut ctx, &tile, plan.geo);
    let mut acc = tcu_sim::FragAcc::zero();
    for term in &plan.decomp().terms {
        acc = rdg_apply_term(&mut ctx, &x, term, plan.config.use_bvs, acc);
    }
    apply_pointwise(&mut ctx, &x, plan.decomp().pointwise, &mut acc);
    let trace = ctx.take_trace().expect("tracing was enabled");
    let mut out = format!(
        "one-warp instruction timeline: {} ({}x fused, {:?}, {} terms)\n\n",
        plan.exec_kernel.name,
        plan.fusion,
        plan.decomp().strategy,
        plan.decomp().num_terms()
    );
    out.push_str(&trace.render());
    out.push_str(&format!(
        "\n{} events; longest unbroken MMA burst: {} instructions\n",
        trace.len(),
        trace.longest_mma_burst()
    ));
    Ok(out)
}

/// The `emit-cuda` subcommand body (also reachable as `codegen`, its
/// pre-IR name): render the CUDA/WMMA listing of any registered kernel's
/// plan — 1-D, 2-D or 3-D, under any `--config` toggle set — by walking
/// the lowered schedule. Kept as the `--target cuda` shorthand.
pub fn codegen_text(kernel: &StencilKernel, config: ExecConfig) -> Result<String, String> {
    Ok(codegen::emit_cuda(&Plan::new(kernel, config)))
}

/// Parse a `--target` value, with a "did you mean" hint for near-miss
/// spellings (`wsgl` → `wgsl`).
pub fn parse_target(token: &str) -> Result<codegen::Target, String> {
    codegen::Target::parse(token).ok_or_else(|| {
        let names = codegen::Target::ALL.map(|t| t.name());
        let mut msg = format!("unknown target {token:?} (expected {})", names.join(", "));
        if let Some(near) = args::suggest(token.trim(), names) {
            msg.push_str(&format!(" — did you mean {near}?"));
        }
        msg
    })
}

/// The `emit` subcommand body: render the kernel listing of any
/// registered kernel's plan for any [`codegen::Target`].
pub fn emit_text(
    kernel: &StencilKernel,
    config: ExecConfig,
    target: codegen::Target,
) -> Result<String, String> {
    Ok(codegen::emit(&Plan::new(kernel, config), target))
}

/// The `analyze` subcommand body: the paper's Eq. 12–16 for one radius.
pub fn analyze_text(h: u64) -> String {
    use lorastencil::analysis;
    format!(
        "radius h = {h}\n\
         Eq. 14  ConvStencil/RDG shared-load ratio: {:.3}x\n\
         \u{2514} redundancy RDG eliminates:          {:.2}%\n\
         Eq. 16  LoRA/ConvStencil MMA ratio:       {:.3}x\n\
         points updated per tile computation:     {}\n",
        analysis::memory_ratio(h),
        100.0 * analysis::redundancy_eliminated(h),
        analysis::mma_ratio(h),
        analysis::points_per_update(h),
    )
}

/// Top-level usage text.
pub fn usage() -> &'static str {
    "lorastencil — stencil computation on (simulated) tensor cores\n\n\
     USAGE:\n\
       lorastencil list\n\
       lorastencil run (--kernel <name> | --spec <file>) [--method <name>]\n\
                      [--size NxM] [--iters N] [--config no-bvs,...] [--backend tcu|sparse|simd|cuda]\n\
                      [--seed N] [--verify] [--trace-out <file>] [--tuning-db <file>]\n\
                      [--checkpoint-dir <dir> [--checkpoint-every N] [--checkpoint-keep K]]\n\
       lorastencil resume --checkpoint-dir <dir> [--checkpoint-keep K] [--verify]\n\
       lorastencil tune (--kernel <name> | --spec <file>) [--size NxM] [--iters N]\n\
                      [--config ...] [--backend ...] [--seed N] [--budget N] [--reps N] [--db <file>]\n\
       lorastencil profile (--kernel <name> | --spec <file>) [--method <name>]\n\
                      [--size NxM] [--iters N] [--trace-out <file>] [--tuning-db <file>]\n\
       lorastencil validate-trace --load <file>\n\
       lorastencil emit (--kernel <name> | --spec <file>) [--target cuda|hip|wgsl]\n\
                      [--config ...] [--backend ...]   # emit-cuda = emit --target cuda\n\
       lorastencil trace (--kernel <name> | --spec <file>) [--config ...]\n\
       lorastencil analyze [--radius h]\n\
       lorastencil serve (--socket <path> | --tcp <addr>) [--batch N] [--batch-wait-us U]\n\
                      [--max-queue N] [--plan-cache N] [--max-conns N] [--backend ...]\n\
                      [--tuning-db <file>]\n\
       lorastencil submit (--socket <path> | --tcp <addr>) [--frame '<json>']   # or frames on stdin\n\
       lorastencil help\n\n\
     SERVE PROTOCOL (one JSON object per line; see DESIGN.md \u{00a7}13):\n\
       {\"kernel\":\"Box-2D9P\",\"size\":[64,64],\"iters\":2,\"seed\":7}\n\
       {\"scenario\":\"small-2d\",\"tenant\":\"team-a\"}\n\
       {\"op\":\"stats\"} | {\"op\":\"ping\"} | {\"op\":\"shutdown\"}\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_kernel_reads_spec_files() {
        let dir = std::env::temp_dir().join("lorastencil-spec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("custom.stencil");
        std::fs::write(
            &path,
            "kernel: custom
weights1d:
0.25 0.5 0.25
",
        )
        .unwrap();
        let k = resolve_kernel(path.to_str().unwrap(), "").unwrap();
        assert_eq!(k.name, "custom");
        assert_eq!(k.radius, 1);
        // bad spec surfaces the parse error with the file name
        std::fs::write(
            &path, "nope
",
        )
        .unwrap();
        let e = resolve_kernel(path.to_str().unwrap(), "").unwrap_err();
        assert!(e.contains("custom.stencil"));
        // missing file
        assert!(resolve_kernel("/does/not/exist.stencil", "").is_err());
    }

    #[test]
    fn kernel_lookup_is_case_insensitive() {
        assert!(find_kernel("box-2d49p").is_some());
        assert!(find_kernel("LAPLACE-2D-O8").is_some());
        assert!(find_kernel("nope").is_none());
    }

    #[test]
    fn kernel_lookup_tolerates_missing_separators() {
        assert_eq!(find_kernel("box2d9p").unwrap().name, "Box-2D9P");
        assert_eq!(find_kernel("heat_3d").unwrap().name, "Heat-3D");
        assert!(find_kernel("box2d9").is_none());
    }

    #[test]
    fn single_dim_size_broadcasts_to_kernel_dims() {
        assert_eq!(broadcast_dims(&[768], 2), vec![768, 768]);
        assert_eq!(broadcast_dims(&[16], 3), vec![16, 16, 16]);
        assert_eq!(broadcast_dims(&[4096], 1), vec![4096]);
        assert_eq!(broadcast_dims(&[64, 32], 2), vec![64, 32]);
    }

    #[test]
    fn profile_report_writes_a_valid_chrome_trace() {
        let dir = std::env::temp_dir().join("lorastencil-cli-profile");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let p = path.to_str().unwrap();
        let k = find_kernel("Box-2D9P").unwrap();
        let m = find_method("LoRAStencil", ExecConfig::full()).unwrap();
        let r = profile_report(&k, m.as_ref(), &[48], 2, 7, p).unwrap();
        for phase in ["plan", "decompose", "apply", "rdg_gather", "mma_batch", "pointwise"] {
            assert!(r.contains(phase), "breakdown is missing {phase}:\n{r}");
        }
        let v = validate_trace(p).unwrap();
        assert!(v.contains("valid chrome trace"), "{v}");
        // and the validator rejects non-trace JSON
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "[{\"name\":\"x\",\"ph\":\"B\"}]").unwrap();
        assert!(validate_trace(bad.to_str().unwrap()).is_err());
    }

    #[test]
    fn method_lookup_covers_all() {
        for name in
            ["LoRAStencil", "convstencil", "TCStencil", "amos", "cuDNN", "Brick", "drstencil"]
        {
            assert!(find_method(name, ExecConfig::full()).is_some(), "{name}");
        }
        assert!(find_method("unknown", ExecConfig::full()).is_none());
    }

    #[test]
    fn config_parsing() {
        use lorastencil::plan::DeviceBackend;
        let c = parse_config("no-bvs,no-async").unwrap();
        assert!(!c.use_bvs && !c.use_async_copy && c.use_tcu());
        assert!(parse_config("bogus").is_err());
        assert_eq!(parse_config("").unwrap(), ExecConfig::full());
        // backend selectors: last one wins, toggles compose
        assert_eq!(parse_config("sparse").unwrap().backend, DeviceBackend::SparseTcu);
        assert_eq!(parse_config("simd").unwrap().backend, DeviceBackend::SimdCore);
        assert_eq!(parse_config("no-tcu").unwrap().backend, DeviceBackend::CudaCore);
        assert_eq!(parse_config("sparse,tcu").unwrap().backend, DeviceBackend::TcuF64);
        let c = parse_config("sparse,no-fusion").unwrap();
        assert_eq!(c.backend, DeviceBackend::SparseTcu);
        assert!(!c.allow_fusion && c.use_tcu());
        // --backend composes over --config without touching toggles
        let c = apply_backend(parse_config("no-bvs").unwrap(), "simd").unwrap();
        assert_eq!(c.backend, DeviceBackend::SimdCore);
        assert!(!c.use_bvs);
        assert_eq!(apply_backend(ExecConfig::full(), "").unwrap(), ExecConfig::full());
        assert_eq!(
            apply_backend(ExecConfig::full(), "cuda").unwrap().backend,
            DeviceBackend::CudaCore
        );
        assert!(apply_backend(ExecConfig::full(), "sparce").is_err());
        assert_eq!(backend_token("cuda").unwrap(), "no-tcu");
    }

    #[test]
    fn target_parsing_and_emit() {
        use lorastencil::codegen::Target;
        assert_eq!(parse_target("cuda").unwrap(), Target::Cuda);
        assert_eq!(parse_target("HIP").unwrap(), Target::Hip);
        let e = parse_target("wsgl").unwrap_err();
        assert!(e.contains("did you mean wgsl?"), "{e}");
        let e = parse_target("metal").unwrap_err();
        assert!(e.contains("unknown target") && !e.contains("did you mean"), "{e}");
        // `emit --target cuda` and the deprecated `emit-cuda` body agree
        let k = find_kernel("Box-2D9P").unwrap();
        assert_eq!(
            emit_text(&k, ExecConfig::full(), Target::Cuda).unwrap(),
            codegen_text(&k, ExecConfig::full()).unwrap()
        );
        for t in Target::ALL {
            assert!(!emit_text(&k, ExecConfig::full(), t).unwrap().is_empty());
        }
    }

    #[test]
    fn run_report_verifies() {
        let k = find_kernel("Box-2D9P").unwrap();
        let m = find_method("LoRAStencil", ExecConfig::full()).unwrap();
        let r = run_report(&k, m.as_ref(), &[32, 32], 3, 7, true, "", "", "").unwrap();
        assert!(r.contains("GStencil/s"));
        assert!(r.contains("verification"));
    }

    #[test]
    fn run_report_rejects_dim_mismatch() {
        let k = find_kernel("Heat-3D").unwrap();
        let m = find_method("LoRAStencil", ExecConfig::full()).unwrap();
        assert!(run_report(&k, m.as_ref(), &[32, 32], 1, 0, false, "", "", "").is_err());
    }

    #[test]
    fn run_report_checkpoints_roundtrip() {
        let dir = std::env::temp_dir().join("lorastencil-cli-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("field.lsg");
        let k = find_kernel("Box-2D9P").unwrap();
        let m = find_method("LoRAStencil", ExecConfig::full()).unwrap();
        let p = path.to_str().unwrap();
        // save 3 steps, then resume from the checkpoint for 2 more
        run_report(&k, m.as_ref(), &[24, 24], 3, 9, true, "", p, "").unwrap();
        let r = run_report(&k, m.as_ref(), &[24, 24], 2, 9, true, p, "", "").unwrap();
        assert!(r.contains("GStencil/s"));
        // resuming from a 2-D checkpoint with a 3-D kernel fails cleanly
        let k3 = find_kernel("Heat-3D").unwrap();
        assert!(run_report(&k3, m.as_ref(), &[4, 8, 8], 1, 0, false, p, "", "").is_err());
    }

    #[test]
    fn checkpoint_every_and_keep_validation() {
        assert_eq!(parse_checkpoint_every("3").unwrap(), 3);
        let e = parse_checkpoint_every("0").unwrap_err();
        assert!(e.contains("positive step count"), "{e}");
        assert!(e.contains("--checkpoint-every 1"), "suggests a fix: {e}");
        let e = parse_checkpoint_every("-4").unwrap_err();
        assert!(e.contains("got -4"), "{e}");
        assert!(parse_checkpoint_every("abc").is_err());
        assert_eq!(parse_checkpoint_keep("5").unwrap(), 5);
        assert!(parse_checkpoint_keep("0").is_err());
        assert!(parse_checkpoint_keep("-1").is_err());
    }

    #[test]
    fn checkpointed_run_then_resume_round_trip() {
        let dir = std::env::temp_dir().join("lorastencil-cli-ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().unwrap();
        let k = find_kernel("Box-2D9P").unwrap();
        // plain run for the golden output
        let straight = {
            let m = find_method("LoRAStencil", ExecConfig::full()).unwrap();
            run_report(&k, m.as_ref(), &[24, 24], 6, 9, true, "", "", "").unwrap()
        };
        let r = run_checkpointed_report(
            &k,
            ExecConfig::full(),
            "LoRAStencil",
            &[24, 24],
            6,
            9,
            true,
            d,
            3,
            4,
        )
        .unwrap();
        assert!(r.contains("2 snapshots written"), "{r}");
        // the checkpointed run reports the same counters/model as plain
        let tail =
            |s: &str| s.lines().filter(|l| l.starts_with("counters")).last().unwrap().to_string();
        assert_eq!(tail(&r), tail(&straight));
        // delete the final snapshot to simulate a crash at step 3, then
        // resume runs the remaining steps and verifies end-to-end
        let newest = dir.join("ckpt-000000000006.lscp");
        std::fs::remove_file(&newest).unwrap();
        let r = resume_report(d, 4, true).unwrap();
        assert!(r.contains("from step 3 of 6"), "{r}");
        assert!(r.contains("max |Δ|"), "{r}");
        assert_eq!(tail(&r), tail(&straight), "resume counters match the straight run");
        // a second resume finds the re-written final snapshot: complete
        let e = resume_report(d, 4, false).unwrap_err();
        assert!(e.contains("nothing to resume"), "{e}");
    }

    #[test]
    fn checkpointing_rejects_non_lorastencil_methods() {
        let k = find_kernel("Box-2D9P").unwrap();
        let e = run_checkpointed_report(
            &k,
            ExecConfig::full(),
            "ConvStencil",
            &[24, 24],
            3,
            9,
            false,
            "/tmp/never-created",
            1,
            3,
        )
        .unwrap_err();
        assert!(e.contains("requires --method LoRAStencil"), "{e}");
    }

    #[test]
    fn resume_on_empty_or_corrupt_directory_fails_loudly() {
        let dir = std::env::temp_dir().join("lorastencil-cli-ckpt-empty");
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().unwrap();
        let e = resume_report(d, 3, false).unwrap_err();
        assert!(e.contains("no snapshots"), "{e}");
        // a directory holding only garbage: every snapshot is rejected
        // with its reason — never resumed from
        std::fs::write(dir.join("ckpt-000000000004.lscp"), b"garbage").unwrap();
        let e = resume_report(d, 3, false).unwrap_err();
        assert!(e.contains("every snapshot failed validation"), "{e}");
        assert!(e.contains("ckpt-000000000004.lscp"), "{e}");
    }

    #[test]
    fn emit_cuda_covers_every_dimension() {
        let k2 = find_kernel("Star-2D13P").unwrap();
        assert!(codegen_text(&k2, ExecConfig::full()).unwrap().contains("wmma"));
        let k3 = find_kernel("Box-3D27P").unwrap();
        assert!(codegen_text(&k3, ExecConfig::full()).unwrap().contains("plane dz="));
        let k1 = find_kernel("Heat-1D").unwrap();
        let one = codegen_text(&k1, ExecConfig::full()).unwrap();
        assert!(one.contains("V1D"), "1-D listing uses the banded gather matrix");
        // ablation toggles flow into the listing
        let cfg = ExecConfig { use_async_copy: false, ..ExecConfig::full() };
        assert!(!codegen_text(&k2, cfg).unwrap().contains("cp.async"));
    }

    #[test]
    fn trace_shows_the_bvs_difference() {
        let k = find_kernel("Box-2D49P").unwrap();
        let bvs = trace_text(&k, ExecConfig::full()).unwrap();
        assert!(bvs.contains("(0 shuffles)"));
        assert!(!bvs.contains("(2 shuffles)"));
        let nat = trace_text(&k, ExecConfig { use_bvs: false, ..ExecConfig::full() }).unwrap();
        assert!(nat.contains("(2 shuffles)"));
        let burst = |s: &str| -> usize {
            s.lines()
                .find(|l| l.contains("longest unbroken MMA burst"))
                .and_then(|l| l.split(':').nth(1))
                .and_then(|t| t.trim().split(' ').next())
                .and_then(|n| n.parse().ok())
                .unwrap()
        };
        assert!(burst(&bvs) > burst(&nat));
    }

    #[test]
    fn analyze_quotes_the_paper_constants() {
        let t = analyze_text(3);
        assert!(t.contains("3.250x"));
        assert!(t.contains("69.23%"));
    }

    #[test]
    fn list_covers_both_libraries() {
        let t = list_text();
        assert!(t.contains("Box-2D49P"));
        assert!(t.contains("Acoustic-3D-o8"));
        assert!(t.contains("ConvStencil"));
    }
}

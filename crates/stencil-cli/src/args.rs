//! Minimal dependency-free argument parsing for the `lorastencil` CLI.

use std::collections::HashMap;

/// A parsed command line: a subcommand plus `--key value` options and
/// bare `--flag`s.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// `--key value` pairs.
    pub options: HashMap<String, String>,
    /// Bare `--flag`s.
    pub flags: Vec<String>,
}

/// Keys that take a value.
const VALUED: &[&str] = &[
    "kernel",
    "method",
    "size",
    "iters",
    "config",
    "backend",
    "radius",
    "seed",
    "spec",
    "load",
    "save",
    "trace-out",
    "checkpoint-dir",
    "checkpoint-every",
    "checkpoint-keep",
    "tuning-db",
    "db",
    "budget",
    "reps",
    "socket",
    "tcp",
    "batch",
    "batch-wait-us",
    "max-queue",
    "plan-cache",
    "max-conns",
    "tune-budget",
    "frame",
    "target",
];

/// Bare flags the CLI understands.
const FLAGS: &[&str] = &["verify"];

/// Parse an argument list (without the program name). Options given
/// twice and keys the CLI does not know are hard errors — a typo like
/// `--itres` must not be swallowed as an accepted flag.
pub fn parse(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter().peekable();
    match it.next() {
        Some(cmd) if !cmd.starts_with("--") => args.command = cmd.clone(),
        Some(other) => return Err(format!("expected a subcommand, got {other}")),
        None => return Err("no subcommand given (try `help`)".into()),
    }
    while let Some(tok) = it.next() {
        let Some(key) = tok.strip_prefix("--") else {
            return Err(format!("unexpected positional argument {tok}"));
        };
        if VALUED.contains(&key) {
            let Some(val) = it.next() else {
                return Err(format!("--{key} needs a value"));
            };
            if args.options.insert(key.to_string(), val.clone()).is_some() {
                return Err(format!("--{key} given more than once"));
            }
        } else if FLAGS.contains(&key) {
            if args.flags.iter().any(|f| f == key) {
                return Err(format!("--{key} given more than once"));
            }
            args.flags.push(key.to_string());
        } else {
            let mut msg = format!("unknown option --{key}");
            if let Some(near) = nearest_key(key) {
                msg.push_str(&format!(" (did you mean --{near}?)"));
            }
            return Err(msg);
        }
    }
    Ok(args)
}

/// Closest known key within edit distance 2, for typo suggestions.
fn nearest_key(key: &str) -> Option<&'static str> {
    suggest(key, VALUED.iter().chain(FLAGS).copied())
}

/// Closest candidate within edit distance 2 — the generic "did you
/// mean" helper behind both option-key and option-*value* typo hints
/// (`--target wsgl` → `wgsl`).
pub fn suggest<'a>(input: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    candidates
        .into_iter()
        .map(|k| (k, edit_distance(input, k)))
        .filter(|&(_, d)| d <= 2)
        .min_by_key(|&(_, d)| d)
        .map(|(k, _)| k)
}

/// Levenshtein distance between two short ASCII keys.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<u8>, Vec<u8>) = (a.bytes().collect(), b.bytes().collect());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cur = row[j + 1];
            row[j + 1] = if ca == cb { prev } else { 1 + prev.min(row[j]).min(cur) };
            prev = cur;
        }
    }
    row[b.len()]
}

impl Args {
    /// Option lookup with default.
    pub fn opt<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(|s| s.as_str()).unwrap_or(default)
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Parse a size spec: `N`, `NxM` or `NxMxK`.
pub fn parse_size(spec: &str) -> Result<Vec<usize>, String> {
    let dims: Result<Vec<usize>, _> = spec.split('x').map(|p| p.trim().parse::<usize>()).collect();
    let dims = dims.map_err(|e| format!("bad size {spec}: {e}"))?;
    if dims.is_empty() || dims.len() > 3 || dims.contains(&0) {
        return Err(format!("size must be N, NxM or NxMxK with positive dims, got {spec}"));
    }
    Ok(dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&sv(&["run", "--kernel", "Box-2D9P", "--verify", "--iters", "4"])).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.opt("kernel", ""), "Box-2D9P");
        assert_eq!(a.opt("iters", "1"), "4");
        assert!(a.flag("verify"));
        assert!(!a.flag("json"));
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse(&sv(&["run", "--kernel"])).is_err());
    }

    #[test]
    fn rejects_positional_noise() {
        assert!(parse(&sv(&["run", "oops"])).is_err());
        assert!(parse(&sv(&["--kernel", "x"])).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn rejects_duplicate_options_and_flags() {
        let e = parse(&sv(&["run", "--iters", "4", "--iters", "8"])).unwrap_err();
        assert!(e.contains("--iters given more than once"), "{e}");
        let e = parse(&sv(&["run", "--verify", "--verify"])).unwrap_err();
        assert!(e.contains("--verify given more than once"), "{e}");
    }

    #[test]
    fn rejects_unknown_keys_with_suggestion() {
        let e = parse(&sv(&["run", "--itres", "10"])).unwrap_err();
        assert!(e.contains("unknown option --itres"), "{e}");
        assert!(e.contains("did you mean --iters?"), "{e}");
        let e = parse(&sv(&["run", "--verfy"])).unwrap_err();
        assert!(e.contains("did you mean --verify?"), "{e}");
        // far from every known key: no suggestion, still an error
        let e = parse(&sv(&["run", "--zzzzzzzz"])).unwrap_err();
        assert!(e.contains("unknown option --zzzzzzzz"), "{e}");
        assert!(!e.contains("did you mean"), "{e}");
    }

    #[test]
    fn size_specs() {
        assert_eq!(parse_size("128").unwrap(), vec![128]);
        assert_eq!(parse_size("64x32").unwrap(), vec![64, 32]);
        assert_eq!(parse_size("8x16x32").unwrap(), vec![8, 16, 32]);
        assert!(parse_size("0x4").is_err());
        assert!(parse_size("1x2x3x4").is_err());
        assert!(parse_size("abc").is_err());
    }
}

//! Minimal dependency-free argument parsing for the `lorastencil` CLI.

use std::collections::HashMap;

/// A parsed command line: a subcommand plus `--key value` options and
/// bare `--flag`s.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// `--key value` pairs.
    pub options: HashMap<String, String>,
    /// Bare `--flag`s.
    pub flags: Vec<String>,
}

/// Keys that take a value; everything else starting with `--` is a flag.
const VALUED: &[&str] =
    &["kernel", "method", "size", "iters", "config", "radius", "seed", "spec", "load", "save"];

/// Parse an argument list (without the program name).
pub fn parse(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter().peekable();
    match it.next() {
        Some(cmd) if !cmd.starts_with("--") => args.command = cmd.clone(),
        Some(other) => return Err(format!("expected a subcommand, got {other}")),
        None => return Err("no subcommand given (try `help`)".into()),
    }
    while let Some(tok) = it.next() {
        let Some(key) = tok.strip_prefix("--") else {
            return Err(format!("unexpected positional argument {tok}"));
        };
        if VALUED.contains(&key) {
            let Some(val) = it.next() else {
                return Err(format!("--{key} needs a value"));
            };
            args.options.insert(key.to_string(), val.clone());
        } else {
            args.flags.push(key.to_string());
        }
    }
    Ok(args)
}

impl Args {
    /// Option lookup with default.
    pub fn opt<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(|s| s.as_str()).unwrap_or(default)
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Parse a size spec: `N`, `NxM` or `NxMxK`.
pub fn parse_size(spec: &str) -> Result<Vec<usize>, String> {
    let dims: Result<Vec<usize>, _> = spec.split('x').map(|p| p.trim().parse::<usize>()).collect();
    let dims = dims.map_err(|e| format!("bad size {spec}: {e}"))?;
    if dims.is_empty() || dims.len() > 3 || dims.contains(&0) {
        return Err(format!("size must be N, NxM or NxMxK with positive dims, got {spec}"));
    }
    Ok(dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&sv(&["run", "--kernel", "Box-2D9P", "--verify", "--iters", "4"])).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.opt("kernel", ""), "Box-2D9P");
        assert_eq!(a.opt("iters", "1"), "4");
        assert!(a.flag("verify"));
        assert!(!a.flag("json"));
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse(&sv(&["run", "--kernel"])).is_err());
    }

    #[test]
    fn rejects_positional_noise() {
        assert!(parse(&sv(&["run", "oops"])).is_err());
        assert!(parse(&sv(&["--kernel", "x"])).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn size_specs() {
        assert_eq!(parse_size("128").unwrap(), vec![128]);
        assert_eq!(parse_size("64x32").unwrap(), vec![64, 32]);
        assert_eq!(parse_size("8x16x32").unwrap(), vec![8, 16, 32]);
        assert!(parse_size("0x4").is_err());
        assert!(parse_size("1x2x3x4").is_err());
        assert!(parse_size("abc").is_err());
    }
}

#!/usr/bin/env bash
# Hermetic CI for the LoRAStencil reproduction suite.
#
# The workspace has zero external dependencies (see DESIGN.md), so every
# step runs with --offline against an empty registry. Exits non-zero on
# the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "   rustfmt not installed; skipping format check"
fi

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== cargo test -q --offline (FOUNDATION_THREADS=1)"
# single-lane pass: results must be bit-identical to the parallel pass
FOUNDATION_THREADS=1 cargo test -q --offline --workspace

echo "== quick executor bench (writes BENCH_pr2.json)"
# cargo bench runs the binary with the package dir as cwd, so the
# report paths must be rooted
cargo bench --offline -p bench-suite --bench executors -- --quick \
    --baseline "$PWD/BENCH_pr2_before.json" --json "$PWD/BENCH_pr2.json"

echo "== dependency audit (workspace members only)"
if cargo tree --offline --workspace --prefix none 2>/dev/null \
    | grep -vE "^\s*$|^\[dev-dependencies\]$" \
    | grep -v "(/" ; then
    echo "error: external dependency found in cargo tree" >&2
    exit 1
fi

echo "CI green"

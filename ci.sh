#!/usr/bin/env bash
# Hermetic CI for the LoRAStencil reproduction suite.
#
# The workspace has zero external dependencies (see DESIGN.md), so every
# step runs with --offline against an empty registry. Exits non-zero on
# the first failure. Each step reports its wall time.
#
# Fuzz verification (tests/fuzz_differential.rs) runs twice: inside the
# ordinary test passes with its default per-engine budgets, and as a
# dedicated bounded step whose case count honors STENCIL_VERIFY_CASES —
# export STENCIL_VERIFY_CASES=2000 (and optionally STENCIL_VERIFY_SEED)
# for a long soak run. See README.md "Fuzz verification".
set -euo pipefail
cd "$(dirname "$0")"

# step <name> <command...>: run a command, report its wall time
step() {
    local name=$1
    shift
    echo "== $name"
    local t0=$SECONDS
    "$@"
    echo "   [$name: $((SECONDS - t0))s]"
}

fmt_check() {
    if cargo fmt --version >/dev/null 2>&1; then
        cargo fmt --all --check
    else
        echo "   rustfmt not installed; skipping format check"
    fi
}

serial_tests() {
    # single-lane pass: results must be bit-identical to the parallel pass
    FOUNDATION_THREADS=1 cargo test -q --offline --workspace
}

run_examples() {
    local ex
    for ex in examples/*.rs; do
        ex=$(basename "$ex" .rs)
        echo "   -- example $ex"
        cargo run --release --offline --example "$ex" >/dev/null
    done
}

fuzz_bounded() {
    # bounded by default; STENCIL_VERIFY_CASES scales all three engines
    STENCIL_VERIFY_CASES="${STENCIL_VERIFY_CASES:-25}" \
        cargo test -q --offline --test fuzz_differential
}

quick_bench() {
    # cargo bench runs the binary with the package dir as cwd, so the
    # report paths must be rooted. Full measurement windows (no --quick):
    # the guard below needs a stable best-of-many, and the whole suite
    # still measures in ~2s. The checked-in tuning DB is installed so
    # the report reflects the tuned schedules a user actually gets.
    LORASTENCIL_TUNING_DB="$PWD/tuning.json" \
        cargo bench --offline -p bench-suite --bench executors -- \
        --baseline "$PWD/BENCH_pr2.json" --json "$PWD/BENCH_pr7.json"
}

bench_guard() {
    # machine-check the fresh report against the checked-in baseline:
    # any tracked kernel more than 10% slower than BENCH_pr2.json fails.
    # Perf gates on shared machines flake, so a tripped guard re-measures
    # — only three consecutive over-threshold readings fail the build.
    local attempt
    for attempt in 1 2 3; do
        if cargo run --release --offline -p bench-suite --bin bench_guard -- \
            --json "$PWD/BENCH_pr7.json" --max-regression 0.10; then
            return 0
        fi
        if [ "$attempt" -lt 3 ]; then
            echo "   guard tripped (attempt $attempt of 3); re-measuring"
            quick_bench
        fi
    done
    echo "error: benchmark regression confirmed on 3 consecutive runs" >&2
    exit 1
}

tune_smoke() {
    # bounded end-to-end autotune: a small budget must still produce a
    # valid DB, and a run under that DB must keep the schedule-invariant
    # counters and verified values of the default schedule (DESIGN.md §12)
    local db=target/ci-tune.json
    local cli="cargo run --release --offline -p stencil-cli --bin lorastencil-cli --"
    rm -f "$db"
    $cli tune --kernel Box-2D9P --size 96 --iters 2 --budget 6 --reps 3 \
        --db "$db" | sed 's/^/   /'
    local plain tuned
    plain=$($cli run --kernel Box-2D9P --size 96 --iters 2 --verify)
    tuned=$($cli run --kernel Box-2D9P --size 96 --iters 2 --verify --tuning-db "$db")
    # the schedule choice is free; MMA count, shuffle count, shared-load
    # requests and the verified max |Δ| are not
    local invariant='s/^counters: \([0-9]*\) MMAs.*, \([0-9]*\) shuffles, \([0-9]*\)+.*/\1 \2 \3/p
                     s/^verification.*/&/p'
    if ! diff <(sed -n "$invariant" <<<"$plain") <(sed -n "$invariant" <<<"$tuned"); then
        echo "error: tuned schedule changed an invariant counter or the values" >&2
        exit 1
    fi
    rm -f "$db"
}

backend_smoke() {
    # one kernel per dimension on all four device backends, each
    # verified against the naive reference. Within a backend family the
    # outputs are bit-identical (sparse tensor cores skip only exact-zero
    # products; SIMD keeps the scalar path's per-element tap order), so
    # the saved grids are compared byte-for-byte: sparse vs tcu, simd vs
    # cuda. Across families the accumulation order differs, which is
    # what --verify is for.
    local cli="cargo run --release --offline -p stencil-cli --bin lorastencil-cli --"
    local kernel size out
    for spec in "Heat-1D:4096" "Heat-2D:96x96" "Heat-3D:8x24x24"; do
        kernel=${spec%%:*}; size=${spec##*:}
        local backend
        for backend in tcu sparse simd cuda; do
            $cli run --kernel "$kernel" --size "$size" --iters 2 --verify \
                --backend "$backend" --save "target/ci-backend-$backend.bin" >/dev/null \
                || { echo "error: $kernel on backend $backend failed" >&2; exit 1; }
        done
        cmp -s target/ci-backend-tcu.bin target/ci-backend-sparse.bin \
            || { echo "error: $kernel: sparse output differs from dense TCU" >&2; exit 1; }
        cmp -s target/ci-backend-cuda.bin target/ci-backend-simd.bin \
            || { echo "error: $kernel: SIMD output differs from scalar CUDA" >&2; exit 1; }
        echo "   $kernel $size: 4 backends verified, sparse==tcu, simd==cuda"
    done
    rm -f target/ci-backend-*.bin
}

profile_smoke() {
    # run the profiler on a small 2-D workload, check the breakdown
    # names every instrumented host phase, and validate the emitted
    # chrome trace with the CLI's own Json::parse-based validator
    local out trace=target/ci-profile-trace.json
    out=$(cargo run --release --offline -p stencil-cli --bin lorastencil-cli -- \
        profile --kernel Box-2D9P --size 96 --iters 4 --trace-out "$trace")
    echo "$out" | sed 's/^/   /'
    local phase
    for phase in plan decompose fuse frag_build apply rdg_gather mma_batch pointwise; do
        if ! grep -q "$phase" <<<"$out"; then
            echo "error: profile breakdown is missing phase '$phase'" >&2
            exit 1
        fi
    done
    cargo run --release --offline -p stencil-cli --bin lorastencil-cli -- \
        validate-trace --load "$trace"
}

crash_resume_smoke() {
    # end-to-end crash consistency: run 6 steps with checkpointing, tear
    # the newest snapshot the way a mid-write crash would, resume, and
    # demand the resumed counters match an uninterrupted run exactly
    local dir=target/ci-ckpt cli="cargo run --release --offline -p stencil-cli --bin lorastencil-cli --"
    rm -rf "$dir"
    local straight interrupted resumed
    straight=$($cli run --kernel Box-2D9P --size 64 --iters 6 --verify)
    $cli run --kernel Box-2D9P --size 64 --iters 6 --verify \
        --checkpoint-dir "$dir" --checkpoint-every 3 >/dev/null
    # crash simulation: the newest snapshot is torn mid-write
    local newest
    newest=$(ls "$dir"/ckpt-*.lscp | sort | tail -1)
    head -c 100 "$newest" >"$newest.torn" && mv "$newest.torn" "$newest"
    resumed=$($cli resume --checkpoint-dir "$dir" --verify)
    grep -q "skipping invalid snapshot" <<<"$resumed" \
        || { echo "error: torn snapshot was not reported" >&2; exit 1; }
    # the counters line is a full execution digest; it must be identical
    if ! diff <(grep "points_updated" <<<"$straight") \
        <(grep "points_updated" <<<"$resumed"); then
        echo "error: resumed run diverged from the uninterrupted run" >&2
        exit 1
    fi
    rm -rf "$dir"
}

checkpoint_battery() {
    # the fault-injection battery again under a single lane: recovery
    # and bit-identical resume must not depend on the pool width
    FOUNDATION_THREADS=1 cargo test -q --offline --test checkpoint
}

serve_smoke() {
    # end-to-end daemon smoke: serve over a unix socket, a plan-miss then
    # a cache-hit of the same job must answer one digest, the served
    # invariant counters must equal what an offline `run` of the
    # identical job reports, hostile frames get typed errors, `stats`
    # sees the tenant, and `shutdown` exits cleanly.
    local sock=target/ci-serve.sock
    local cli="cargo run --release --offline -p stencil-cli --bin lorastencil-cli --"
    rm -f "$sock"
    $cli serve --socket "$sock" --batch 4 >target/ci-serve.log 2>&1 &
    local pid=$!
    local i
    for i in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done
    [ -S "$sock" ] || { echo "error: serve socket never appeared" >&2; kill "$pid" 2>/dev/null; exit 1; }
    local frame='{"kernel":"Box-2D49P","size":[40,40],"iters":3,"seed":11,"tenant":"ci"}'
    local first second
    first=$($cli submit --socket "$sock" --frame "$frame")
    second=$($cli submit --socket "$sock" --frame "$frame")
    grep -q '"cache":"miss"' <<<"$first" \
        || { echo "error: first job did not plan: $first" >&2; kill "$pid"; exit 1; }
    grep -q '"cache":"hit"' <<<"$second" \
        || { echo "error: second job did not hit the plan cache: $second" >&2; kill "$pid"; exit 1; }
    if ! diff <(grep -o '"digest":"[^"]*"' <<<"$first") <(grep -o '"digest":"[^"]*"' <<<"$second"); then
        echo "error: the cache hit changed the digest" >&2; kill "$pid"; exit 1
    fi
    # invariant-counter parity with the offline CLI on the identical
    # job. Only the Prediction-class counters are compared: the daemon
    # schedule-tunes on a cache miss, and descriptive counters (L2/HBM
    # staging traffic, store requests) legitimately move with the tuned
    # schedule — the determinism contract (DESIGN.md §13) pins values
    # and invariants, not the schedule.
    local o_mma o_shuf o_shload
    read -r o_mma o_shuf o_shload < <($cli run --kernel Box-2D49P --size 40 --iters 3 \
        | sed -n 's/^counters: \([0-9]*\) MMAs, [0-9]* CUDA flops, \([0-9]*\) shuffles, \([0-9]*\)+[0-9]* shared req, .*$/\1 \2 \3/p')
    [ -n "$o_mma" ] || { echo "error: could not parse offline counters" >&2; kill "$pid"; exit 1; }
    local kv
    for kv in "mma_ops:$o_mma" "shuffle_ops:$o_shuf" "shared_load_requests:$o_shload"; do
        grep -q "\"${kv%%:*}\":${kv##*:}[,}]" <<<"$second" || {
            echo "error: served counter ${kv%%:*} diverged from the offline run (want $kv): $second" >&2
            kill "$pid"; exit 1
        }
    done
    local bad
    bad=$($cli submit --socket "$sock" --frame 'not json {')
    { grep -q '"ok":false' <<<"$bad" && grep -q '"kind":"parse"' <<<"$bad" \
        && grep -q '"offset":' <<<"$bad"; } \
        || { echo "error: malformed frame did not get a typed parse error: $bad" >&2; kill "$pid"; exit 1; }
    local stats
    stats=$($cli submit --socket "$sock" --frame '{"op":"stats"}')
    { grep -q '"ci"' <<<"$stats" && grep -q '"coalesced"' <<<"$stats"; } \
        || { echo "error: stats is missing the tenant or the cache fields: $stats" >&2; kill "$pid"; exit 1; }
    $cli submit --socket "$sock" --frame '{"op":"shutdown"}' >/dev/null
    wait "$pid" || { echo "error: serve exited non-zero after shutdown" >&2; exit 1; }
    rm -f "$sock" target/ci-serve.log
}

loadgen_bench() {
    # drive the daemon core in-process: warm cache-hit throughput must
    # beat cold re-planning by >=5x (the loadgen retries 3 times before
    # failing), and open-loop p50/p99 latency lands in BENCH_pr8.json.
    # The report entries carry no speedup_vs_baseline, so bench_guard
    # treats them as informational; the >=5x gate is loadgen's own.
    cargo run --release --offline -p bench-suite --bin loadgen -- \
        --json "$PWD/BENCH_pr8.json" | sed 's/^/   /'
}

emit_smoke() {
    # multi-target codegen smoke: every emit target across one kernel
    # per dimensionality and all four device backends must render
    # non-empty, and the CUDA output is diffed byte-for-byte against
    # the checked-in goldens (tests/snapshots/cuda/) plus the deprecated
    # `emit-cuda` alias — any drift fails the build. Regenerate goldens
    # deliberately with UPDATE_SNAPSHOTS=1 (see tests/codegen_snapshots.rs).
    local cli="cargo run --release --offline -p stencil-cli --bin lorastencil-cli --"
    local kernel backend target out=target/ci-emit.out
    for kernel in Heat-1D Box-2D49P Heat-3D; do
        for backend in tcu sparse simd cuda; do
            for target in cuda hip wgsl; do
                $cli emit --kernel "$kernel" --backend "$backend" --target "$target" >"$out" \
                    || { echo "error: emit $kernel/$backend/$target failed" >&2; exit 1; }
                [ -s "$out" ] || { echo "error: emit $kernel/$backend/$target is empty" >&2; exit 1; }
            done
        done
        # golden pin: `emit --target cuda` == the checked-in snapshot
        local stem golden
        stem=$(tr '[:upper:]' '[:lower:]' <<<"$kernel")
        golden="tests/snapshots/cuda/$stem.cu"
        $cli emit --kernel "$kernel" --target cuda >"$out"
        diff -u "$golden" "$out" \
            || { echo "error: $kernel CUDA listing drifted from $golden" >&2; exit 1; }
        # the deprecated alias must emit the same bytes
        $cli emit-cuda --kernel "$kernel" 2>/dev/null \
            | diff - "$out" \
            || { echo "error: emit-cuda alias diverged from emit --target cuda" >&2; exit 1; }
        echo "   $kernel: 3 targets x 4 backends emitted; CUDA matches golden + alias"
    done
    # a near-miss --target spelling must fail with a suggestion
    if $cli emit --kernel Heat-1D --target wsgl >/dev/null 2>"$out"; then
        echo "error: emit accepted bogus target wsgl" >&2; exit 1
    fi
    grep -q "did you mean wgsl?" "$out" \
        || { echo "error: no 'did you mean wgsl?' suggestion for --target wsgl" >&2; exit 1; }
    rm -f "$out"
}

dep_audit() {
    if cargo tree --offline --workspace --prefix none 2>/dev/null \
        | grep -vE "^\s*$|^\[dev-dependencies\]$" \
        | grep -v "(/"; then
        echo "error: external dependency found in cargo tree" >&2
        exit 1
    fi
}

step "cargo fmt --check" fmt_check
step "cargo build --release --offline" cargo build --release --offline --workspace
step "cargo test -q --offline" cargo test -q --offline --workspace
step "cargo test -q --offline (FOUNDATION_THREADS=1)" serial_tests
step "examples (cargo run --release --example *)" run_examples
step "bounded fuzz (STENCIL_VERIFY_CASES=${STENCIL_VERIFY_CASES:-25})" fuzz_bounded
step "quick executor bench (tuned schedules, writes BENCH_pr7.json)" quick_bench
step "bench regression guard (>10% vs BENCH_pr2.json fails)" bench_guard
step "tune smoke (bounded autotune + invariant-counter check)" tune_smoke
step "backend smoke (4 backends x 3 dims, verify + in-family bit-identity)" backend_smoke
step "profile smoke (stencil-cli profile + trace validation)" profile_smoke
step "crash-resume smoke (run, tear newest snapshot, resume)" crash_resume_smoke
step "serve smoke (daemon over unix socket: parity, errors, shutdown)" serve_smoke
step "serve loadgen (hit vs cold-plan >=5x gate, writes BENCH_pr8.json)" loadgen_bench
step "emit smoke (3 targets x 4 backends x 3 dims; CUDA golden + alias diff)" emit_smoke
step "checkpoint battery (FOUNDATION_THREADS=1)" checkpoint_battery
step "dependency audit (workspace members only)" dep_audit

echo "CI green"
